//! Property-based integration tests: the five atomic multicast properties
//! (§2.2) must hold for every protocol on randomized workloads, overlays,
//! network jitter, and garbage-collection settings.
//!
//! Runs ride on the deterministic simulator through the harness, so every
//! failure proptest finds is replayable from its seed.

use flexcast_gtpcc::WorkloadMode;
use flexcast_harness::{run_on, ExperimentConfig, ProtocolKind};
use flexcast_overlay::{presets, regions, CDagOrder, Tree};
use flexcast_sim::SimTime;
use flexcast_telemetry::Telemetry;
use flexcast_types::GroupId;
use proptest::prelude::*;

fn base_config(protocol: ProtocolKind, seed: u64, locality: f64, jitter: f64) -> ExperimentConfig {
    ExperimentConfig {
        protocol,
        locality,
        mode: WorkloadMode::GlobalOnly,
        n_clients: 12,
        duration: SimTime::from_secs(2),
        seed,
        jitter_ms: jitter,
        flush_period: Some(SimTime::from_ms(400.0)),
        server_service_ms: 0.05,
        server_processing_ms: 10.0,
        advert_stride: Some(16),
        telemetry: Telemetry::disabled(),
        shards: 0,
    }
}

/// An arbitrary permutation of the 12 nodes, as a C-DAG rank order.
fn arb_order() -> impl Strategy<Value = CDagOrder> {
    Just(()).prop_perturb(|_, mut rng| {
        let mut nodes: Vec<GroupId> = (0..12u16).map(GroupId).collect();
        // Fisher–Yates with proptest's rng keeps the case reproducible.
        for i in (1..nodes.len()).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            nodes.swap(i, j);
        }
        CDagOrder::from_order(nodes).expect("permutation")
    })
}

/// An arbitrary tree over the 12 nodes: random parent below each node in
/// a random ordering.
fn arb_tree() -> impl Strategy<Value = Tree> {
    Just(()).prop_perturb(|_, mut rng| {
        let mut nodes: Vec<u16> = (0..12).collect();
        for i in (1..nodes.len()).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            nodes.swap(i, j);
        }
        let mut parents = vec![None; 12];
        for i in 1..nodes.len() {
            let parent = nodes[(rng.next_u32() as usize) % i];
            parents[nodes[i] as usize] = Some(GroupId(parent));
        }
        Tree::from_parents(parents).expect("rooted tree")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn flexcast_satisfies_atomic_multicast_on_any_overlay(
        order in arb_order(),
        seed in 0u64..1_000,
        locality in 0.5f64..1.0,
        jitter in 0.0f64..15.0,
    ) {
        let cfg = base_config(ProtocolKind::FlexCast(order), seed, locality, jitter);
        let r = run_on(&cfg, &regions::aws12());
        prop_assert!(r.check.all_ok(), "{:?}", r.check);
        prop_assert!(r.completed > 0);
        // Genuineness: zero payload overhead everywhere.
        for n in &r.per_node {
            prop_assert!(n.overhead.abs() < 1e-9);
        }
    }

    #[test]
    fn hierarchical_satisfies_atomic_multicast_on_any_tree(
        tree in arb_tree(),
        seed in 0u64..1_000,
        jitter in 0.0f64..15.0,
    ) {
        let cfg = base_config(ProtocolKind::Hierarchical(tree), seed, 0.9, jitter);
        let r = run_on(&cfg, &regions::aws12());
        prop_assert!(r.check.all_ok(), "{:?}", r.check);
        prop_assert!(r.completed > 0);
    }

    #[test]
    fn skeen_satisfies_atomic_multicast(
        seed in 0u64..1_000,
        locality in 0.5f64..1.0,
        jitter in 0.0f64..15.0,
    ) {
        let cfg = base_config(ProtocolKind::Distributed, seed, locality, jitter);
        let r = run_on(&cfg, &regions::aws12());
        prop_assert!(r.check.all_ok(), "{:?}", r.check);
        prop_assert!(r.completed > 0);
        for n in &r.per_node {
            prop_assert!(n.overhead.abs() < 1e-9, "Skeen is genuine");
        }
    }

    #[test]
    fn flexcast_gc_never_breaks_ordering(
        seed in 0u64..1_000,
        flush_ms in 100.0f64..800.0,
    ) {
        let mut cfg = base_config(ProtocolKind::FlexCast(presets::o1()), seed, 0.9, 5.0);
        cfg.flush_period = Some(SimTime::from_ms(flush_ms));
        let r = run_on(&cfg, &regions::aws12());
        prop_assert!(r.check.all_ok(), "{:?}", r.check);
    }

    #[test]
    fn full_workload_mode_holds_properties(
        seed in 0u64..1_000,
    ) {
        for protocol in [
            ProtocolKind::FlexCast(presets::o2()),
            ProtocolKind::Hierarchical(presets::t2()),
            ProtocolKind::Distributed,
        ] {
            let mut cfg = base_config(protocol, seed, 0.95, 5.0);
            cfg.mode = WorkloadMode::Full;
            let r = run_on(&cfg, &regions::aws12());
            prop_assert!(r.check.all_ok(), "{:?}", r.check);
        }
    }
}

/// Deterministic cross-protocol comparison on identical workloads: every
/// protocol must deliver exactly the registered messages (agreement), and
/// determinism must hold run to run.
#[test]
fn identical_seeds_identical_results_per_protocol() {
    for protocol in [
        ProtocolKind::FlexCast(presets::o1()),
        ProtocolKind::Hierarchical(presets::t1()),
        ProtocolKind::Distributed,
    ] {
        let cfg = base_config(protocol, 42, 0.9, 8.0);
        let a = run_on(&cfg, &regions::aws12());
        let b = run_on(&cfg, &regions::aws12());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.stats.events, b.stats.events);
        assert_eq!(a.trace.len(), b.trace.len());
        for (ta, tb) in a.trace.iter().zip(&b.trace) {
            let ida: Vec<_> = ta.iter().map(|e| e.id).collect();
            let idb: Vec<_> = tb.iter().map(|e| e.id).collect();
            assert_eq!(ida, idb, "delivery orders must be identical");
        }
    }
}
