//! Property tests for the SMR substrate (paper §4.4): Paxos safety under
//! arbitrary message loss, duplication, and reordering, replica lockstep
//! for `ReplicatedGroup<FlexCastGroup>` across seeded crash/recover
//! schedules, and trace equivalence of delta-suppressed vs. plain engine
//! networks under the same chaotic delivery schedule.

use flexcast_core::{FlexCastGroup, Output, Packet};
use flexcast_harness::replicated::{apply_cmd, ReplCmd, ReplEngine};
use flexcast_overlay::CDagOrder;
use flexcast_smr::{
    BallotLeaderElection, BleMsg, BleOutput, GroupEffect, PaxosMsg, Replica, ReplicatedGroup,
    SmrOutput,
};
use flexcast_types::{ClientId, DestSet, GroupId, Message, MsgId, Payload};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------------
// Part 1: bare Paxos — no two replicas ever commit different commands to
// the same slot, no matter how hostile the network.
// ---------------------------------------------------------------------------

type Cmd = u32;

/// A chaotic network: random delivery order, seeded drops and duplicates,
/// crashed replicas black-holed.
struct Net {
    queue: Vec<(u32, u32, PaxosMsg<Cmd>)>,
    rng: StdRng,
    drop: f64,
    dup: f64,
    crashed: BTreeSet<u32>,
    /// Every `Committed { slot, cmd }` each replica ever reported.
    committed: Vec<BTreeMap<u64, Cmd>>,
}

impl Net {
    fn new(n: usize, seed: u64, drop: f64, dup: f64) -> Self {
        Net {
            queue: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            drop,
            dup,
            crashed: BTreeSet::new(),
            committed: vec![BTreeMap::new(); n],
        }
    }

    fn absorb(&mut self, from: u32, outs: Vec<SmrOutput<Cmd>>) {
        for o in outs {
            match o {
                SmrOutput::Send { to, msg } => {
                    if self.rng.random::<f64>() < self.drop {
                        continue;
                    }
                    self.queue.push((from, to, msg.clone()));
                    if self.rng.random::<f64>() < self.dup {
                        self.queue.push((from, to, msg));
                    }
                }
                SmrOutput::Committed { slot, cmd } => {
                    let prev = self.committed[from as usize].insert(slot, cmd);
                    assert!(
                        prev.is_none() || prev == Some(cmd),
                        "replica {from} re-committed slot {slot} with a different command"
                    );
                }
                SmrOutput::SnapshotNeeded { .. } => {
                    unreachable!("no compaction in these properties")
                }
            }
        }
    }

    fn run(&mut self, replicas: &mut [Replica<Cmd>]) {
        let mut steps = 0u32;
        while !self.queue.is_empty() {
            steps += 1;
            assert!(steps < 500_000, "no quiescence");
            let i = self.rng.random_range(0..self.queue.len());
            let (from, to, msg) = self.queue.swap_remove(i);
            if self.crashed.contains(&to) {
                continue;
            }
            let mut outs = Vec::new();
            replicas[to as usize].on_message(from, msg, &mut outs);
            self.absorb(to, outs);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Chaos Paxos: random elections, proposals through whichever replica,
    /// drops, duplicates, reordering, and a crash — and still no slot is
    /// ever committed with two different commands anywhere.
    #[test]
    fn paxos_never_commits_conflicting_commands(
        seed in 0u64..10_000,
        drop in 0.0f64..0.4,
        dup in 0.0f64..0.4,
        rounds in 1u32..5,
    ) {
        let n: u32 = 3;
        let mut rs: Vec<Replica<Cmd>> = (0..n).map(|i| Replica::new(i, n)).collect();
        let mut net = Net::new(n as usize, seed, drop, dup);
        let mut driver = StdRng::seed_from_u64(seed ^ 0xD00D);
        let mut next_cmd: Cmd = 0;

        for round in 0..rounds {
            // A (possibly already-leading) replica campaigns.
            let cand = driver.random_range(0..n);
            let mut outs = Vec::new();
            rs[cand as usize].start_election(&mut outs);
            net.absorb(cand, outs);
            net.run(&mut rs);

            // Crash one replica mid-test, once; recover it a round later.
            if round == 1 {
                net.crashed.insert(driver.random_range(0..n));
            } else if round == 2 {
                net.crashed.clear();
            }

            // Propose through arbitrary replicas (followers buffer and
            // flush on later leadership — also a safety hazard to cover).
            for _ in 0..driver.random_range(1..6u32) {
                let via = driver.random_range(0..n);
                let mut outs = Vec::new();
                rs[via as usize].propose(next_cmd, &mut outs);
                next_cmd += 1;
                net.absorb(via, outs);
            }
            net.run(&mut rs);
        }

        // Agreement across replicas: any slot committed by two replicas
        // carries the same command.
        for a in 0..n as usize {
            for b in (a + 1)..n as usize {
                for (slot, cmd) in &net.committed[a] {
                    if let Some(other) = net.committed[b].get(slot) {
                        prop_assert_eq!(
                            cmd, other,
                            "slot {} diverged between replicas {} and {}", slot, a, b
                        );
                    }
                }
            }
        }
        // The applied prefixes are compatible, too.
        let logs: Vec<Vec<Cmd>> = rs.iter_mut().map(|r| r.take_committed()).collect();
        for a in &logs {
            for b in &logs {
                let k = a.len().min(b.len());
                prop_assert_eq!(&a[..k], &b[..k]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Part 2: ReplicatedGroup<FlexCastGroup> — replicas applying the committed
// log stay in lockstep across a seeded crash/recover schedule.
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Debug)]
enum GCmd {
    Client(Message),
    Peer(GroupId, Packet),
}

/// A FlexCast engine with a shadow delivery log for lockstep assertions.
struct LoggedEngine {
    engine: FlexCastGroup,
    log: Vec<MsgId>,
}

fn apply(e: &mut LoggedEngine, cmd: GCmd, out: &mut Vec<GroupEffect<GCmd>>) {
    let mut outputs = Vec::new();
    match cmd {
        GCmd::Client(m) => e.engine.on_client(m, &mut outputs),
        GCmd::Peer(from, pkt) => e.engine.on_packet(from, pkt, &mut outputs),
    }
    for o in outputs {
        match o {
            Output::Deliver(m) => {
                e.log.push(m.id);
                out.push(GroupEffect::Engine(GCmd::Client(m)));
            }
            Output::Send { to, pkt } => out.push(GroupEffect::Engine(GCmd::Peer(to, pkt))),
        }
    }
}

type Cluster = Vec<ReplicatedGroup<LoggedEngine, GCmd>>;

/// Routes replication traffic with seeded random ordering, dropping
/// messages to crashed replicas.
struct GroupNet {
    queue: Vec<(u32, u32, PaxosMsg<GCmd>)>,
    rng: StdRng,
    crashed: BTreeSet<u32>,
}

impl GroupNet {
    fn absorb(&mut self, from: u32, fx: Vec<GroupEffect<GCmd>>) {
        for e in fx {
            if let GroupEffect::Replication { to, msg } = e {
                self.queue.push((from, to, msg));
            }
        }
    }

    fn run(&mut self, cluster: &mut Cluster) {
        let mut steps = 0u32;
        while !self.queue.is_empty() {
            steps += 1;
            assert!(steps < 500_000, "no quiescence");
            let i = self.rng.random_range(0..self.queue.len());
            let (from, to, msg) = self.queue.swap_remove(i);
            if self.crashed.contains(&to) {
                continue;
            }
            let mut fx = Vec::new();
            cluster[to as usize].on_replication(from, msg, &mut fx);
            self.absorb(to, fx);
        }
    }
}

fn msg(seq: u32) -> Message {
    Message::new(
        MsgId::new(ClientId(8), seq),
        DestSet::try_from_ranks([0u16, 1]).unwrap(),
        Payload::empty(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// A replicated FlexCast group under a seeded crash/recover schedule:
    /// whichever replica leads proposes client multicasts; one replica
    /// crashes (chosen by seed), a new leader takes over, the crashed
    /// replica recovers and catches up through repair ticks. Every
    /// replica's delivery log must be a duplicate-free prefix of the most
    /// advanced log.
    #[test]
    fn replicated_flexcast_replicas_stay_in_lockstep(
        seed in 0u64..10_000,
        batches in 2u32..6,
        per_batch in 1u32..5,
    ) {
        let rf: u32 = 3;
        let mut cluster: Cluster = (0..rf)
            .map(|i| {
                ReplicatedGroup::new(
                    i,
                    rf,
                    LoggedEngine {
                        engine: FlexCastGroup::new(GroupId(0), 2),
                        log: Vec::new(),
                    },
                    apply,
                )
            })
            .collect();
        let mut net = GroupNet {
            queue: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            crashed: BTreeSet::new(),
        };
        let mut driver = StdRng::seed_from_u64(seed ^ 0xBEEF);

        // Initial leader.
        let mut leader: u32 = driver.random_range(0..rf);
        let mut fx = Vec::new();
        cluster[leader as usize].start_election(&mut fx);
        net.absorb(leader, fx);
        net.run(&mut cluster);

        let crash_at = driver.random_range(0..batches);
        let victim = driver.random_range(0..rf);
        let mut seq = 0u32;
        for batch in 0..batches {
            if batch == crash_at {
                net.crashed.insert(victim);
                if victim == leader {
                    // Fail over to a survivor.
                    leader = (0..rf).find(|r| !net.crashed.contains(r)).unwrap();
                    let mut fx = Vec::new();
                    cluster[leader as usize].start_election(&mut fx);
                    net.absorb(leader, fx);
                    net.run(&mut cluster);
                }
            }
            for _ in 0..per_batch {
                let mut fx = Vec::new();
                cluster[leader as usize].submit(GCmd::Client(msg(seq)), &mut fx);
                seq += 1;
                net.absorb(leader, fx);
            }
            net.run(&mut cluster);
        }

        // Recovery: the victim hears again; repair ticks re-drive stuck
        // slots and fill its gaps until it catches up.
        net.crashed.clear();
        for _ in 0..4 {
            for (r, group) in cluster.iter_mut().enumerate() {
                let mut fx = Vec::new();
                group.tick_repair(&mut fx);
                net.absorb(r as u32, fx);
            }
            net.run(&mut cluster);
        }

        // Lockstep: every log is a prefix of the longest, duplicate-free,
        // and the longest log holds every multicast proposed.
        let logs: Vec<&[MsgId]> = cluster.iter().map(|g| g.engine().log.as_slice()).collect();
        let longest = *logs.iter().max_by_key(|l| l.len()).unwrap();
        for (r, log) in logs.iter().enumerate() {
            prop_assert_eq!(
                *log, &longest[..log.len()],
                "replica {} diverged from the group order", r
            );
            let uniq: BTreeSet<&MsgId> = log.iter().collect();
            prop_assert_eq!(uniq.len(), log.len(), "double delivery at replica {}", r);
        }
        prop_assert_eq!(longest.len() as u32, seq, "no committed multicast lost");
    }
}

// ---------------------------------------------------------------------------
// Part 3: delta suppression (DESIGN.md §8) — a suppressed engine network
// and an unsuppressed one, driven through the SAME chaotic delivery
// schedule (random reordering, duplicated packets, client retries), must
// deliver identical sequences at every group.
//
// The networks stay in lockstep because suppression only removes delta
// entries the receiver provably already processed, and advertisements
// ride links of their own (descendant → ancestor) — so the per-link
// protocol packet streams of the two networks pair up one-to-one, and
// each paired apply must produce the same deliveries.
// ---------------------------------------------------------------------------

/// Splits apply effects into delivered ids and emitted inter-group sends.
fn split_fx(fx: Vec<GroupEffect<ReplCmd>>) -> (Vec<MsgId>, Vec<(GroupId, u64, Packet)>) {
    let mut dels = Vec::new();
    let mut sends = Vec::new();
    for e in fx {
        if let GroupEffect::Engine(cmd) = e {
            match cmd {
                ReplCmd::Client(m) => dels.push(m.id),
                ReplCmd::Peer { peer, seq, pkt } => sends.push((peer, seq, pkt)),
                ReplCmd::Noop { .. } => {}
            }
        }
    }
    (dels, sends)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Drive both networks to quiescence through one seeded schedule and
    /// assert per-apply and end-to-end delivery equality.
    #[test]
    fn suppressed_and_plain_networks_deliver_identical_sequences(
        seed in 0u64..10_000,
        n_msgs in 4u32..16,
        dup in 0.0f64..0.3,
    ) {
        const N: u16 = 5;
        let order = CDagOrder::identity(N as usize);
        // Network A: plain protocol. Network B: aggressive advertisement.
        let mut net_a: Vec<ReplEngine> = (0..N)
            .map(|g| ReplEngine::new(GroupId(g), order.clone(), None))
            .collect();
        let mut net_b: Vec<ReplEngine> = (0..N)
            .map(|g| ReplEngine::new(GroupId(g), order.clone(), Some(1)))
            .collect();

        // Pending deliveries: `(destination group, A command, B command)`.
        // Advertisements exist only in network B (`cmd_a` is `None`).
        let mut pending: Vec<(usize, Option<ReplCmd>, ReplCmd)> = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCAFE);

        for s in 0..n_msgs {
            let client = ClientId(s % 2);
            let k = rng.random_range(2..=3usize);
            let mut dst = DestSet::new();
            while dst.len() < k {
                dst.insert(GroupId(rng.random_range(0..N)));
            }
            let m = Message::new(MsgId::new(client, s / 2), dst, Payload::empty()).unwrap();
            let entry = net_a[0].entry_node(dst).index();
            pending.push((entry, Some(ReplCmd::Client(m.clone())), ReplCmd::Client(m)));
        }

        let mut steps = 0u32;
        while !pending.is_empty() {
            steps += 1;
            prop_assert!(steps < 200_000, "no quiescence");
            let i = rng.random_range(0..pending.len());
            let (dst, cmd_a, cmd_b) = pending.swap_remove(i);
            // Duplicate the packet with probability `dup`: the per-link
            // sequence dedup (and client-id dedup) must absorb it. This
            // also models loss-then-retransmission.
            if rng.random::<f64>() < dup {
                pending.push((dst, cmd_a.clone(), cmd_b.clone()));
            }

            let mut fx_b = Vec::new();
            apply_cmd(&mut net_b[dst], cmd_b, &mut fx_b);
            let (dels_b, sends_b) = split_fx(fx_b);

            // An emitted effect names its *destination*; as the input the
            // destination consumes, `peer` is the *sender* (this group).
            let sender = GroupId(dst as u16);

            let Some(cmd_a) = cmd_a else {
                // A B-only advertisement: absorbing it must not deliver
                // or send anything.
                prop_assert!(dels_b.is_empty(), "advert caused a delivery");
                for (peer, seq, pkt) in sends_b {
                    prop_assert!(matches!(pkt, Packet::Advert { .. }));
                    pending.push((
                        peer.index(),
                        None,
                        ReplCmd::Peer { peer: sender, seq, pkt },
                    ));
                }
                continue;
            };

            let mut fx_a = Vec::new();
            apply_cmd(&mut net_a[dst], cmd_a, &mut fx_a);
            let (dels_a, sends_a) = split_fx(fx_a);

            // Per-apply delivery equality: suppression is invisible to
            // the delivery sequence.
            prop_assert_eq!(&dels_a, &dels_b, "deliveries diverged at group {}", dst);

            // B's sends = A's sends (same links, same seqs, same message
            // identities; only the history deltas inside may differ) plus
            // B-only advertisements on upstream links.
            let mut protocol_b = Vec::new();
            for (peer, seq, pkt) in sends_b {
                if matches!(pkt, Packet::Advert { .. }) {
                    pending.push((
                        peer.index(),
                        None,
                        ReplCmd::Peer { peer: sender, seq, pkt },
                    ));
                } else {
                    protocol_b.push((peer, seq, pkt));
                }
            }
            prop_assert_eq!(sends_a.len(), protocol_b.len(), "send streams diverged");
            for ((pa, sa, pkt_a), (pb, sb, pkt_b)) in sends_a.into_iter().zip(protocol_b) {
                prop_assert_eq!(pa, pb);
                prop_assert_eq!(sa, sb);
                prop_assert_eq!(pkt_a.kind(), pkt_b.kind());
                pending.push((
                    pa.index(),
                    Some(ReplCmd::Peer { peer: sender, seq: sa, pkt: pkt_a }),
                    ReplCmd::Peer { peer: sender, seq: sb, pkt: pkt_b },
                ));
            }
        }

        // End-to-end: identical per-group delivery logs, and every group
        // delivered everything addressed to it.
        for g in 0..N as usize {
            prop_assert_eq!(
                net_a[g].delivery_log(),
                net_b[g].delivery_log(),
                "group {} delivery order diverged",
                g
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Part 4: ballot leader election under arbitrary directed link blocks
// (DESIGN.md §11). A replica is *majority-roundtrip-connected* when a
// majority of replicas (itself included) can both receive its heartbeat
// requests and get replies back to it. BLE must elect exactly where such
// majorities exist: connected replicas settle on a leader, cut-off
// replicas go dark (no dueling-candidates livelock), and distinct stable
// self-leaders can only coexist across a broken roundtrip — so with full
// connectivity the leader is unique.
// ---------------------------------------------------------------------------

/// One global tick of an instantly-delivered BLE network: every replica
/// closes/opens its heartbeat round, then all traffic — requests and the
/// replies they trigger — routes to quiescence, dropping blocked edges.
fn ble_tick(nodes: &mut [BallotLeaderElection], blocked: &BTreeSet<(u32, u32)>) {
    let mut wire: Vec<(u32, u32, BleMsg)> = Vec::new();
    for node in nodes.iter_mut() {
        let mut out = Vec::new();
        node.on_tick(&mut out);
        let from = node.pid();
        for o in out {
            if let BleOutput::Send { to, msg } = o {
                wire.push((from, to, msg));
            }
        }
    }
    while let Some((from, to, msg)) = wire.pop() {
        if blocked.contains(&(from, to)) {
            continue;
        }
        let mut out = Vec::new();
        nodes[to as usize].on_message(from, msg, &mut out);
        for o in out {
            if let BleOutput::Send { to: t2, msg } = o {
                wire.push((to, t2, msg));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Arbitrary static directed block patterns over 3–5 replicas: after
    /// the rounds settle, every replica holds a leader belief iff it is
    /// majority-roundtrip-connected, every believed leader is itself
    /// electable, beliefs and ballots are stable (no livelock under a
    /// static topology), and no two stable self-leaders can hear each
    /// other.
    #[test]
    fn ble_elects_exactly_where_majorities_can_roundtrip(
        n in 3u32..=5,
        raw_edges in collection::vec(0u32..25, 0..=18),
    ) {
        // Decode edge indices into directed blocks over the n replicas.
        let blocked: BTreeSet<(u32, u32)> = raw_edges
            .into_iter()
            .map(|e| (e / 5, e % 5))
            .filter(|&(a, b)| a != b && a < n && b < n)
            .collect();
        let roundtrip = |p: u32, q: u32| {
            p == q || (!blocked.contains(&(p, q)) && !blocked.contains(&(q, p)))
        };
        let majority = (n / 2 + 1) as usize;
        let connected: Vec<bool> = (0..n)
            .map(|p| (0..n).filter(|&q| roundtrip(p, q)).count() >= majority)
            .collect();

        let mut nodes: Vec<BallotLeaderElection> = (0..n)
            .map(|p| BallotLeaderElection::new(p, n, 1, 1))
            .collect();
        for _ in 0..40 {
            ble_tick(&mut nodes, &blocked);
        }
        let settled: Vec<_> = nodes.iter().map(|b| b.leader()).collect();
        let ballots: Vec<_> = nodes.iter().map(|b| b.current_ballot()).collect();

        // Stability: a static topology means static beliefs and static
        // ballots — no flapping, no overbid churn, no livelock.
        for _ in 0..20 {
            ble_tick(&mut nodes, &blocked);
        }
        let later: Vec<_> = nodes.iter().map(|b| b.leader()).collect();
        prop_assert_eq!(&settled, &later, "beliefs flapped under a static topology");
        let later_ballots: Vec<_> = nodes.iter().map(|b| b.current_ballot()).collect();
        prop_assert_eq!(&ballots, &later_ballots, "ballots grew under a static topology");

        for p in 0..n as usize {
            // Leader belief iff the replica's own majority can roundtrip:
            // cut-off minorities go dark instead of dueling.
            prop_assert_eq!(
                settled[p].is_some(),
                connected[p],
                "replica {} has belief {:?} but connected={} (blocked: {:?})",
                p, settled[p], connected[p], &blocked
            );
            // Every believed leader earned its candidacy with completed
            // rounds of its own.
            if let Some(l) = settled[p] {
                prop_assert!(
                    connected[l.owner as usize],
                    "replica {} follows unelectable {:?} (blocked: {:?})",
                    p, l, &blocked
                );
            }
        }

        // Never two stable leaders in the same partition: if two replicas
        // both stably believe in themselves, the lower ballot would have
        // followed the higher the moment a roundtrip existed between them.
        let self_leaders: Vec<u32> = (0..n)
            .filter(|&p| settled[p as usize].is_some_and(|l| l.owner == p))
            .collect();
        for (i, &p) in self_leaders.iter().enumerate() {
            for &q in &self_leaders[i + 1..] {
                prop_assert!(
                    !roundtrip(p, q),
                    "stable leaders {} and {} hear each other (blocked: {:?})",
                    p, q, &blocked
                );
            }
        }
    }
}
