//! The paper's qualitative claims, asserted as integration tests. These
//! are the "shape" checks of the reproduction: who wins at which
//! destination, where overhead concentrates, how locality shifts things.
//! Each test runs a scaled-down version of the corresponding experiment.

use flexcast_gtpcc::WorkloadMode;
use flexcast_harness::{run, ExperimentConfig, ExperimentResult, ProtocolKind};
use flexcast_overlay::presets;
use flexcast_sim::SimTime;
use flexcast_telemetry::Telemetry;
use flexcast_types::GroupId;

fn latency_cfg(protocol: ProtocolKind, locality: f64) -> ExperimentConfig {
    // The paper's operating point: 240 clients (§5.5 justifies it as the
    // load where no protocol is queue-bound). Smaller populations
    // under-weight FlexCast because the GC flush traffic is amortized
    // over fewer transactions.
    ExperimentConfig {
        protocol,
        locality,
        mode: WorkloadMode::GlobalOnly,
        n_clients: 240,
        duration: SimTime::from_secs(6),
        seed: 11,
        jitter_ms: 2.0,
        flush_period: Some(SimTime::from_ms(250.0)),
        server_service_ms: 0.05,
        server_processing_ms: 20.0,
        advert_stride: None,
        telemetry: Telemetry::disabled(),
        shards: 0,
    }
}

fn p90(result: &ExperimentResult, rank: usize) -> f64 {
    result
        .percentile_row(rank)
        .unwrap_or_else(|| panic!("no samples at destination {rank}"))
        .0
}

/// §5.6: "FlexCast outperforms both a distributed and hierarchical
/// protocols in the latency of the first destination group for all three
/// experimented locality rates."
#[test]
fn flexcast_wins_first_destination_at_every_locality() {
    for locality in [0.90, 0.95, 0.99] {
        let flex = run(&latency_cfg(
            ProtocolKind::FlexCast(presets::o1()),
            locality,
        ));
        let hier = run(&latency_cfg(
            ProtocolKind::Hierarchical(presets::t1()),
            locality,
        ));
        let dist = run(&latency_cfg(ProtocolKind::Distributed, locality));
        flex.check.assert_ok();
        hier.check.assert_ok();
        dist.check.assert_ok();
        let (f, h, d) = (p90(&flex, 1), p90(&hier, 1), p90(&dist, 1));
        assert!(
            f < h,
            "locality {locality}: FlexCast 1st-dest 90p {f:.1} must beat hier {h:.1}"
        );
        // Against Skeen the margin depends on how much of the window the
        // GC flush shadows cover; the full-length figure runs (20 s) show
        // a strict win at every locality (see EXPERIMENTS.md), while this
        // shortened run only guarantees it at ≥95 % locality.
        if locality >= 0.95 {
            assert!(
                f < d,
                "locality {locality}: FlexCast {f:.1} vs Skeen {d:.1}"
            );
        } else {
            assert!(
                f < d * 1.15,
                "locality {locality}: FlexCast {f:.1} within 15% of Skeen {d:.1}"
            );
        }
    }
}

/// §5.6: reaching the second destination costs the hierarchical protocol
/// only one extra tree step, while FlexCast needs an ack round plus
/// dependency resolution. The absolute winner at the 2nd destination
/// depends on the deployment's fixed software costs (the paper's testbed
/// has hier winning; see EXPERIMENTS.md), but the *step cost* asymmetry
/// is structural: FlexCast's 1st→2nd latency growth must exceed the
/// hierarchical protocol's.
#[test]
fn flexcast_pays_more_to_reach_the_second_destination() {
    let flex = run(&latency_cfg(ProtocolKind::FlexCast(presets::o1()), 0.90));
    let hier = run(&latency_cfg(
        ProtocolKind::Hierarchical(presets::t1()),
        0.90,
    ));
    let flex_step = p90(&flex, 2) - p90(&flex, 1);
    let hier_step = p90(&hier, 2) - p90(&hier, 1);
    assert!(
        flex_step > hier_step,
        "FlexCast 1st→2nd growth {flex_step:.1} vs hierarchical {hier_step:.1}"
    );
}

/// §5.8 + Figure 1: genuine protocols have zero payload overhead; the
/// hierarchical protocol concentrates overhead at inner nodes, and leaf
/// groups have none.
#[test]
fn overhead_splits_by_genuineness() {
    let mut cfg = latency_cfg(ProtocolKind::Hierarchical(presets::t1()), 0.90);
    cfg.mode = WorkloadMode::Full;
    let hier = run(&cfg);
    hier.check.assert_ok();
    let t1 = presets::t1();
    let mut inner_overhead = 0.0;
    for (i, stats) in hier.per_node.iter().enumerate() {
        if t1.is_inner(GroupId(i as u16)) {
            inner_overhead += stats.overhead;
        } else {
            assert!(
                stats.overhead.abs() < 1e-9,
                "leaf {i} must have zero overhead"
            );
        }
    }
    assert!(inner_overhead > 0.05, "inner nodes relay: {inner_overhead}");

    for protocol in [
        ProtocolKind::FlexCast(presets::o1()),
        ProtocolKind::Distributed,
    ] {
        let mut cfg = latency_cfg(protocol, 0.90);
        cfg.mode = WorkloadMode::Full;
        let r = run(&cfg);
        r.check.assert_ok();
        for (i, stats) in r.per_node.iter().enumerate() {
            assert!(
                stats.overhead.abs() < 1e-9,
                "genuine protocol: node {i} overhead {}",
                stats.overhead
            );
        }
    }
}

/// §5.8 + Table 4: T3 (star) pushes virtually all overhead onto its root,
/// and its overhead profile is insensitive to the locality rate.
#[test]
fn star_tree_concentrates_overhead_at_root() {
    let mut profiles = Vec::new();
    for locality in [0.90, 0.99] {
        let mut cfg = latency_cfg(ProtocolKind::Hierarchical(presets::t3()), locality);
        cfg.mode = WorkloadMode::Full;
        let r = run(&cfg);
        r.check.assert_ok();
        let root = presets::t3().root();
        let root_overhead = r.per_node[root.index()].overhead;
        let max_other = r
            .per_node
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != root.index())
            .map(|(_, s)| s.overhead)
            .fold(0.0f64, f64::max);
        assert!(
            root_overhead > 0.3,
            "locality {locality}: star root bears the overhead ({root_overhead})"
        );
        assert!(max_other.abs() < 1e-9, "leaves have none");
        profiles.push(root_overhead);
    }
    let drift = (profiles[0] - profiles[1]).abs();
    assert!(
        drift < 0.1,
        "T3 overhead barely moves with locality (paper Table 4): drift {drift}"
    );
}

/// §5.4: FlexCast is sensitive to the overlay — O1 (locality-aware seed)
/// beats the deliberately bad identity-adjacent orders at the first
/// destination. We compare O1 against O2 the way the paper does and only
/// require O1 to not lose.
#[test]
fn o1_at_least_matches_o2_at_first_destination() {
    let o1 = run(&latency_cfg(ProtocolKind::FlexCast(presets::o1()), 0.90));
    let o2 = run(&latency_cfg(ProtocolKind::FlexCast(presets::o2()), 0.90));
    o1.check.assert_ok();
    o2.check.assert_ok();
    let (a, b) = (p90(&o1, 1), p90(&o2, 1));
    assert!(
        a <= b * 1.15,
        "O1 1st-dest 90p {a:.1} should not lose badly to O2 {b:.1}"
    );
}

/// §5.5: throughput grows with the client population before saturation.
#[test]
fn throughput_grows_with_clients() {
    for protocol in [
        ProtocolKind::FlexCast(presets::o1()),
        ProtocolKind::Hierarchical(presets::t1()),
        ProtocolKind::Distributed,
    ] {
        let few = run(&ExperimentConfig {
            n_clients: 12,
            ..ExperimentConfig::throughput(protocol.clone(), 12)
        });
        let many = run(&ExperimentConfig {
            n_clients: 96,
            duration: SimTime::from_secs(5),
            ..ExperimentConfig::throughput(protocol.clone(), 96)
        });
        few.check.assert_ok();
        many.check.assert_ok();
        assert!(
            many.throughput_tps > few.throughput_tps * 2.0,
            "{}: 96 clients ({:.0}) vs 12 ({:.0})",
            protocol.label(),
            many.throughput_tps,
            few.throughput_tps
        );
    }
}

/// Figure 8's qualitative claim: FlexCast moves more bytes per node than
/// the baselines because packets carry history deltas.
#[test]
fn flexcast_histories_cost_bytes() {
    let mk = |p: ProtocolKind| {
        let cfg = ExperimentConfig {
            protocol: p,
            locality: 0.99,
            mode: WorkloadMode::GlobalOnly,
            n_clients: 48,
            duration: SimTime::from_secs(4),
            seed: 2,
            jitter_ms: 2.0,
            flush_period: Some(SimTime::from_ms(250.0)),
            server_service_ms: 0.05,
            server_processing_ms: 20.0,
            advert_stride: None,
            telemetry: Telemetry::disabled(),
            shards: 0,
        };
        let r = run(&cfg);
        r.check.assert_ok();
        let total: f64 = r.per_node.iter().map(|n| n.kbytes_per_sec).sum();
        total / r.per_node.len() as f64
    };
    let flex = mk(ProtocolKind::FlexCast(presets::o1()));
    let dist = mk(ProtocolKind::Distributed);
    assert!(
        flex > dist,
        "FlexCast KB/s per node ({flex:.1}) should exceed Skeen's ({dist:.1})"
    );
}
