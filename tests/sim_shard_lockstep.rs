//! Lockstep determinism suite for the sharded parallel simulation core.
//!
//! The contract under test: a `World` produces the *same execution* — the
//! same delivered sequences, checker verdicts, drop counts, and
//! fired-action traces, byte for byte — at every shard count. Shard
//! workers only relocate actor callbacks onto threads; every routing
//! decision (RNG draws, sequence numbers, FIFO clamps, fault sampling)
//! happens on the committer in global `(time, seq)` order, so thread
//! scheduling must never leak into results. These tests drive arbitrary
//! topologies, seeds, and fault schedules through shards ∈ {1, 2, 4} and
//! reactive adversaries through the same sweep, then compare everything.

use flexcast_chaos::{
    run_adversary, run_schedule, scenarios, FaultEvent, FaultSchedule, ScheduleAdversary,
};
use flexcast_harness::replicated::{
    build_world, collect, replica_pid, ReplicatedConfig, ReplicatedResult,
};
use flexcast_harness::DeliveryEvent;
use flexcast_overlay::LatencyMatrix;
use flexcast_sim::{Actor, Ctx, LinkFault, LinkModel, Observation, ProcessId, SimTime, World};
use flexcast_types::{GroupId, MsgId};
use proptest::prelude::*;

const MAX_EVENTS: u64 = 50_000_000;

/// Everything a run can disagree on, flattened for `assert_eq!`.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    events: u64,
    completed: u64,
    dropped: u64,
    issued: usize,
    trace: Vec<Vec<DeliveryEvent>>,
    replica_logs: Vec<Vec<Vec<MsgId>>>,
    check: (bool, usize, usize, usize),
}

fn fingerprint(r: ReplicatedResult) -> Fingerprint {
    Fingerprint {
        events: r.events,
        completed: r.completed,
        dropped: r.dropped,
        issued: r.issued,
        trace: r.trace,
        replica_logs: r.replica_logs,
        check: (
            r.check.acyclic,
            r.check.validity_violations.len(),
            r.check.prefix_violations.len(),
            r.check.integrity_violations.len(),
        ),
    }
}

fn matrix(n: usize) -> LatencyMatrix {
    let mut m = LatencyMatrix::zero(n);
    for a in 0..n {
        m.set_local(a, 0.5);
        for b in (a + 1)..n {
            m.set_rtt(a, b, 18.0 + 9.0 * ((a * 5 + b) % 4) as f64);
        }
    }
    m
}

/// One arbitrary fault drawn by proptest; rendered into a
/// [`FaultSchedule`] against a concrete topology.
#[derive(Clone, Debug)]
enum Fault {
    CrashRecover {
        pid_ix: usize,
        crash_ms: f64,
        down_ms: f64,
    },
    LinkLoss {
        a_ix: usize,
        b_ix: usize,
        start_ms: f64,
        dur_ms: f64,
        drop: f64,
        dup: f64,
    },
    Spike {
        a_ix: usize,
        b_ix: usize,
        start_ms: f64,
        dur_ms: f64,
        extra_ms: f64,
    },
}

/// Draws 0–3 faults from the vendored proptest's perturb RNG (the same
/// reproducible-case pattern `tests/properties.rs` uses for overlays).
fn arb_faults() -> impl Strategy<Value = Vec<Fault>> {
    Just(()).prop_perturb(|_, mut rng| {
        let n = rng.below(4) as usize;
        (0..n)
            .map(|_| match rng.below(3) {
                0 => Fault::CrashRecover {
                    pid_ix: rng.below(64) as usize,
                    crash_ms: 40.0 + rng.next_f64() * 560.0,
                    down_ms: 150.0 + rng.next_f64() * 1_350.0,
                },
                1 => Fault::LinkLoss {
                    a_ix: rng.below(64) as usize,
                    b_ix: rng.below(64) as usize,
                    start_ms: rng.next_f64() * 400.0,
                    dur_ms: 300.0 + rng.next_f64() * 2_200.0,
                    drop: rng.next_f64() * 0.25,
                    dup: rng.next_f64() * 0.15,
                },
                _ => Fault::Spike {
                    a_ix: rng.below(64) as usize,
                    b_ix: rng.below(64) as usize,
                    start_ms: rng.next_f64() * 500.0,
                    dur_ms: 200.0 + rng.next_f64() * 1_300.0,
                    extra_ms: 5.0 + rng.next_f64() * 55.0,
                },
            })
            .collect()
    })
}

fn render(faults: &[Fault], n_pids: usize) -> FaultSchedule {
    let mut s = FaultSchedule::new();
    for f in faults {
        match *f {
            Fault::CrashRecover {
                pid_ix,
                crash_ms,
                down_ms,
            } => {
                let pid = (pid_ix % n_pids) as ProcessId;
                s = s.merge(scenarios::crash_recover(pid, crash_ms, down_ms));
            }
            Fault::LinkLoss {
                a_ix,
                b_ix,
                start_ms,
                dur_ms,
                drop,
                dup,
            } => {
                let a = (a_ix % n_pids) as ProcessId;
                let b = (b_ix % n_pids) as ProcessId;
                if a == b {
                    continue;
                }
                let fault = LinkFault {
                    drop,
                    dup,
                    reorder: 0.0,
                    extra_delay: SimTime::ZERO,
                };
                s = s.link_fault_between(start_ms, start_ms + dur_ms, a, b, fault);
            }
            Fault::Spike {
                a_ix,
                b_ix,
                start_ms,
                dur_ms,
                extra_ms,
            } => {
                let a = (a_ix % n_pids) as ProcessId;
                let b = (b_ix % n_pids) as ProcessId;
                if a == b {
                    continue;
                }
                s = s.latency_spike(start_ms, start_ms + dur_ms, &[a, b], extra_ms);
            }
        }
    }
    s
}

/// Runs one replicated scenario at a given shard count through the
/// adversary driver (so the fired-action trace is captured too) and
/// returns everything comparable.
fn run_at(
    n_groups: u16,
    seed: u64,
    schedule: &FaultSchedule,
    shards: usize,
) -> (Fingerprint, Vec<(SimTime, FaultEvent)>) {
    let mut cfg = ReplicatedConfig::small(n_groups, 3, seed);
    cfg.msgs_per_client = 4;
    cfg.stop_at = SimTime::from_secs(12);
    cfg.shards = shards;
    let m = matrix(n_groups as usize);
    let mut world = build_world(&cfg, &m);
    let mut adv = ScheduleAdversary::new(schedule.clone());
    let run = run_adversary(&mut world, &mut adv, MAX_EVENTS);
    let r = collect(&cfg, &world);
    (fingerprint(r), run.actions)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The tentpole's headline property: arbitrary topology, seed, and
    /// fault schedule produce byte-identical delivered sequences, checker
    /// digests, drop counts, and fired-action traces at 1, 2, and 4
    /// shards.
    #[test]
    fn arbitrary_runs_are_lockstep_across_shard_counts(
        n_groups in 2u16..=4,
        seed in 0u64..1_000_000,
        faults in arb_faults(),
    ) {
        let n_pids = n_groups as usize * 3;
        let schedule = render(&faults, n_pids);
        let (base, base_actions) = run_at(n_groups, seed, &schedule, 1);
        for shards in [2usize, 4] {
            let (fp, actions) = run_at(n_groups, seed, &schedule, shards);
            prop_assert_eq!(&fp, &base, "diverged at {} shards", shards);
            prop_assert_eq!(&actions, &base_actions, "actions diverged at {} shards", shards);
        }
    }
}

/// A reactive leader-hunter — crash every new leader of group 0 as it
/// emerges — fires at observation-dependent times; its kill trace and the
/// world it leaves behind must be identical at every shard count.
#[test]
fn leader_hunter_trace_is_lockstep_across_shard_counts() {
    let run_hunt = |shards: usize| {
        let mut cfg = ReplicatedConfig::small(3, 3, 11);
        cfg.msgs_per_client = 4;
        cfg.shards = shards;
        let m = matrix(3);
        let mut world = build_world(&cfg, &m);
        let mut hunter = scenarios::leader_hunter(GroupId(0), 250.0, 3).down_ms(1_200.0);
        let run = run_adversary(&mut world, &mut hunter, MAX_EVENTS);
        let kills = hunter.kills().to_vec();
        (fingerprint(collect(&cfg, &world)), run.actions, kills)
    };
    let (base, base_actions, base_kills) = run_hunt(1);
    assert!(!base_kills.is_empty(), "the hunter actually hunted");
    for shards in [2usize, 4] {
        let (fp, actions, kills) = run_hunt(shards);
        assert_eq!(fp, base, "leader-hunter world diverged at {shards} shards");
        assert_eq!(
            actions, base_actions,
            "fired actions diverged at {shards} shards"
        );
        assert_eq!(kills, base_kills, "kill trace diverged at {shards} shards");
    }
}

/// Same for the quorum-cutter: its observation-triggered link cuts and
/// the resulting failovers replay exactly under sharded execution.
#[test]
fn quorum_cutter_trace_is_lockstep_across_shard_counts() {
    let run_cut = |shards: usize| {
        let mut cfg = ReplicatedConfig::small(3, 3, 23);
        cfg.msgs_per_client = 4;
        cfg.shards = shards;
        let m = matrix(3);
        let mut world = build_world(&cfg, &m);
        let pids: Vec<ProcessId> = (0..3).map(|r| replica_pid(GroupId(0), r, 3)).collect();
        let mut cutter = scenarios::quorum_cutter(GroupId(0), pids, 150.0, 5_000.0, 2);
        let run = run_adversary(&mut world, &mut cutter, MAX_EVENTS);
        let cuts = cutter.cuts().to_vec();
        (fingerprint(collect(&cfg, &world)), run.actions, cuts)
    };
    let (base, base_actions, base_cuts) = run_cut(1);
    assert!(!base_cuts.is_empty(), "the cutter actually cut");
    for shards in [2usize, 4] {
        let (fp, actions, cuts) = run_cut(shards);
        assert_eq!(fp, base, "quorum-cutter world diverged at {shards} shards");
        assert_eq!(
            actions, base_actions,
            "fired actions diverged at {shards} shards"
        );
        assert_eq!(cuts, base_cuts, "cut trace diverged at {shards} shards");
    }
}

/// The scripted-schedule driver and the adversary driver agree at every
/// shard count (the batched non-observing fast path is order-equivalent
/// to the sequential step loop).
#[test]
fn run_schedule_matches_run_adversary_at_every_shard_count() {
    let schedule = scenarios::crash_recover(replica_pid(GroupId(0), 0, 3), 120.0, 900.0).merge(
        scenarios::wan_partition(
            &[replica_pid(GroupId(1), 0, 3)],
            &[replica_pid(GroupId(2), 0, 3)],
            300.0,
            800.0,
        ),
    );
    let mut base: Option<Fingerprint> = None;
    for shards in [1usize, 2, 4] {
        let mut cfg = ReplicatedConfig::small(3, 3, 5);
        cfg.msgs_per_client = 4;
        cfg.shards = shards;
        let m = matrix(3);
        let mut world = build_world(&cfg, &m);
        run_schedule(&mut world, &schedule, MAX_EVENTS);
        let fp = fingerprint(collect(&cfg, &world));
        match &base {
            None => base = Some(fp),
            Some(b) => assert_eq!(&fp, b, "run_schedule diverged at {shards} shards"),
        }
    }
}

// ---------------------------------------------------------------------------
// drain_observations ordering regression (satellite: observation hazard)
// ---------------------------------------------------------------------------

/// A probe actor that publishes [`Observation::Custom`] markers with a
/// caller-chosen timestamp when its timer fires — the mechanism real
/// engines use to publish batched events whose logical time predates the
/// callback that flushes them.
struct Backdater {
    /// `(timer token, observation timestamp, value)` — the observation is
    /// published when the matching timer fires, stamped `at`. The token
    /// doubles as the fire time in milliseconds.
    emits: Vec<(u64, SimTime, u64)>,
}

impl Actor<()> for Backdater {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        for &(token, _, _) in &self.emits {
            ctx.set_timer(SimTime::from_ms(token as f64), token);
        }
    }

    fn on_message(&mut self, _from: ProcessId, _msg: (), _ctx: &mut Ctx<'_, ()>) {}

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, ()>) {
        let me = ctx.me();
        for &(t, at, value) in &self.emits {
            if t == token {
                ctx.observe(Observation::Custom {
                    pid: me,
                    tag: 7,
                    value,
                    at,
                });
            }
        }
    }
}

fn two_backdaters(a: Backdater, b: Backdater) -> World<(), Backdater> {
    let m = LatencyMatrix::zero(2);
    let sites = vec![GroupId(0), GroupId(1)];
    let mut w = World::new(vec![a, b], LinkModel::new(m, sites, 0.0), 1);
    w.enable_probes();
    w
}

/// Regression: a later-processed actor publishing an observation with an
/// *earlier* logical timestamp must not reach the adversary after
/// observations stamped later. `drain_observations` sorts by timestamp
/// (stably, so equal-time observations keep deterministic event order) —
/// without the sort, the drain below yields `[20 ms, 10 ms]` and every
/// threshold adversary sees time run backwards.
#[test]
fn drain_observations_orders_backdated_publications() {
    let mut w = two_backdaters(
        // Fires at 20 ms, stamps its observation 20 ms (honest).
        Backdater {
            emits: vec![(20, SimTime::from_ms(20.0), 1)],
        },
        // Fires at 25 ms, stamps its observation 10 ms (backdated flush).
        Backdater {
            emits: vec![(25, SimTime::from_ms(10.0), 2)],
        },
    );
    w.run_to_quiescence(1_000);

    let mut obs = Vec::new();
    w.drain_observations(&mut obs);
    let seen: Vec<(u64, u64)> = obs
        .iter()
        .map(|o| match *o {
            Observation::Custom { value, at, .. } => (at.as_nanos(), value),
            ref other => panic!("unexpected observation {other:?}"),
        })
        .collect();
    assert_eq!(
        seen,
        vec![
            (SimTime::from_ms(10.0).as_nanos(), 2),
            (SimTime::from_ms(20.0).as_nanos(), 1),
        ],
        "observations must drain in timestamp order, not publish order"
    );
}

/// Stability half of the contract: equal-timestamp observations from
/// different actors keep the deterministic event (publish) order, so the
/// sort cannot itself become a nondeterminism source.
#[test]
fn drain_observations_is_stable_for_equal_timestamps() {
    let at = SimTime::from_ms(15.0);
    let mut w = two_backdaters(
        Backdater {
            emits: vec![(10, at, 1), (30, at, 3)],
        },
        Backdater {
            emits: vec![(20, at, 2)],
        },
    );
    w.run_to_quiescence(1_000);

    let mut obs = Vec::new();
    w.drain_observations(&mut obs);
    let values: Vec<u64> = obs
        .iter()
        .map(|o| match *o {
            Observation::Custom { value, .. } => value,
            ref other => panic!("unexpected observation {other:?}"),
        })
        .collect();
    assert_eq!(
        values,
        vec![1, 2, 3],
        "equal-time observations must keep publish order"
    );
}
