//! A wholesale-supply scenario on the emulated 12-region AWS WAN.
//!
//! This is the paper's motivating deployment: warehouses in twelve AWS
//! regions, customers ordering from their nearest warehouse, and items
//! occasionally shipped from the next-closest warehouse — the gTPC-C
//! workload (§5.3). We run FlexCast on overlay O1 and report what an
//! operator would look at: per-destination response latency, throughput,
//! and the genuineness guarantee (zero relay overhead). Run with:
//!
//! ```sh
//! cargo run --release --example gtpcc_city_supply
//! ```

use flexcast_gtpcc::WorkloadMode;
use flexcast_harness::{run, ExperimentConfig, ProtocolKind};
use flexcast_overlay::{presets, regions};
use flexcast_sim::SimTime;
use flexcast_telemetry::Telemetry;

fn main() {
    let cfg = ExperimentConfig {
        protocol: ProtocolKind::FlexCast(presets::o1()),
        locality: 0.95,
        mode: WorkloadMode::GlobalOnly,
        n_clients: 60,
        duration: SimTime::from_secs(5),
        seed: 7,
        jitter_ms: 2.0,
        flush_period: Some(SimTime::from_ms(250.0)),
        server_service_ms: 0.05,
        server_processing_ms: 20.0,
        advert_stride: None,
        telemetry: Telemetry::disabled(),
        shards: 0,
    };
    println!("running gTPC-C (95% locality) over FlexCast O1 on 12 AWS regions…\n");
    let result = run(&cfg);
    result.check.assert_ok();

    println!("transactions completed: {}", result.completed);
    println!("throughput:             {:.0} txn/s", result.throughput_tps);
    println!("\nresponse latency by destination (ms):");
    for rank in 1..=3 {
        if let Some((p90, p95, p99)) = result.percentile_row(rank) {
            println!("  {rank}º response   90p {p90:7.1}   95p {p95:7.1}   99p {p99:7.1}");
        }
    }

    println!("\nper-region traffic:");
    println!("  region            msgs/s   KB/s   overhead");
    for (i, stats) in result.per_node.iter().enumerate() {
        println!(
            "  {:<16} {:8.1} {:7.1} {:8.1}%",
            regions::AWS12_NAMES[i],
            stats.msgs_per_sec,
            stats.kbytes_per_sec,
            stats.overhead * 100.0
        );
    }
    let max_overhead = result
        .per_node
        .iter()
        .map(|s| s.overhead)
        .fold(0.0f64, f64::max);
    assert!(max_overhead < 1e-9);
    println!("\nFlexCast is genuine: every region delivered everything it received.");
}
