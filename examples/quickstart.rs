//! Quickstart: three FlexCast groups ordering interleaved multicasts.
//!
//! This walks the protocol at the engine level — no network, no
//! simulator — to show the moving parts: the lca delivering immediately,
//! histories piggybacked on packets, and a lower group's delivery order
//! being respected upstream. Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use flexcast_core::{FlexCastGroup, Output};
use flexcast_types::{ClientId, DestSet, GroupId, Message, MsgId};

/// Routes engine outputs synchronously until quiescence, printing every
/// delivery. Returns the per-group delivery log.
fn pump(
    engines: &mut [FlexCastGroup],
    from: GroupId,
    out: Vec<Output>,
    log: &mut Vec<(GroupId, MsgId)>,
) {
    for o in out {
        match o {
            Output::Deliver(m) => {
                println!("  {from} delivers {} (dst {:?})", m.id, m.dst);
                log.push((from, m.id));
            }
            Output::Send { to, pkt } => {
                println!("  {from} → {to}: {} packet", pkt.kind());
                let mut next = Vec::new();
                engines[to.index()].on_packet(from, pkt, &mut next);
                pump(engines, to, next, log);
            }
        }
    }
}

fn main() {
    // Three groups ranked A(0) < B(1) < C(2) in the complete DAG.
    let n = 3u16;
    let mut engines: Vec<FlexCastGroup> =
        (0..n).map(|g| FlexCastGroup::new(GroupId(g), n)).collect();
    let mut log = Vec::new();

    let client = ClientId(1);
    let multicast = |seq: u32, ranks: &[u16], body: &str| -> Message {
        Message::new(
            MsgId::new(client, seq),
            DestSet::try_from_ranks(ranks.iter().copied()).unwrap(),
            body.as_bytes().into(),
        )
        .unwrap()
    };

    // The Figure 3(a) scenario: indirect dependencies through histories.
    let m1 = multicast(1, &[0, 2], "m1: to A and C");
    let m2 = multicast(2, &[0, 1], "m2: to A and B");
    let m3 = multicast(3, &[1, 2], "m3: to B and C");

    println!("client multicasts m1 to {{A, C}} — enters at its lca, A:");
    let mut out = Vec::new();
    engines[0].on_client(m1.clone(), &mut out);
    pump(&mut engines, GroupId(0), out, &mut log);

    println!("client multicasts m2 to {{A, B}}:");
    let mut out = Vec::new();
    engines[0].on_client(m2.clone(), &mut out);
    pump(&mut engines, GroupId(0), out, &mut log);

    println!("client multicasts m3 to {{B, C}} — enters at B:");
    let mut out = Vec::new();
    engines[1].on_client(m3.clone(), &mut out);
    pump(&mut engines, GroupId(1), out, &mut log);

    println!("\nper-group delivery orders:");
    for g in 0..n {
        let order: Vec<String> = log
            .iter()
            .filter(|(h, _)| h.rank() == g)
            .map(|(_, id)| id.to_string())
            .collect();
        println!("  g{g}: {}", order.join(" → "));
    }

    // C must order m1 before m3: A ordered m1 ≺ m2 and B ordered m2 ≺ m3,
    // so histories force m1 ≺ m3 even though C never saw m2.
    let at_c: Vec<MsgId> = log
        .iter()
        .filter(|(h, _)| *h == GroupId(2))
        .map(|&(_, id)| id)
        .collect();
    assert_eq!(at_c, vec![m1.id, m3.id]);
    println!("\nC delivered m1 before m3 — the indirect dependency held.");
}
