//! Reactive adversary walkthrough: the leader hunter.
//!
//! A timed `FaultSchedule` can kill pid 0 at 150 ms — but after the
//! failover it has no idea who leads, so "kill the *current* leader a
//! fixed delay after each failover" is inexpressible as a script. The
//! reactive `Adversary` API closes that gap: replicas publish
//! `Observation::LeaderElected` at every leadership transition, and the
//! hunter answers each one with a delayed, targeted crash.
//!
//! This example hunts group 0's leadership three times, shows that at
//! least two *distinct* replicas died (the proof the adversary re-aimed),
//! verifies every multicast still completed with zero safety violations,
//! and then replays the hunter's fired-action trace as a plain timed
//! schedule — reproducing the adversarial execution event-for-event.
//!
//! ```sh
//! cargo run --release --example leader_hunter
//! ```

use flexcast::chaos::{run_adversary, run_schedule, scenarios};
use flexcast::harness::replicated::{build_world, collect, group_of, replica_of, ReplicatedConfig};
use flexcast::overlay::LatencyMatrix;
use flexcast::types::GroupId;
use std::collections::BTreeSet;

fn matrix(n: usize) -> LatencyMatrix {
    let mut m = LatencyMatrix::zero(n);
    for a in 0..n {
        m.set_local(a, 0.5);
        for b in (a + 1)..n {
            m.set_rtt(a, b, 24.0 + 8.0 * ((a * b) % 3) as f64);
        }
    }
    m
}

fn main() {
    let cfg = ReplicatedConfig::small(3, 3, 7);
    println!(
        "leader hunter: {} groups × {} replicas, {} clients × {} multicasts",
        cfg.n_groups, cfg.rf, cfg.n_clients, cfg.msgs_per_client
    );
    println!("  adversary: crash group 0's CURRENT leader 250 ms after each election, 3 kills\n");

    let m = matrix(cfg.n_groups as usize);
    let mut world = build_world(&cfg, &m);
    let mut hunter = scenarios::leader_hunter(GroupId(0), 250.0, 3).down_ms(1_200.0);
    let run = run_adversary(&mut world, &mut hunter, 100_000_000);
    let r = collect(&cfg, &world);

    println!("  the hunt (reacting to observed elections):");
    for (t, pid) in hunter.kills() {
        println!(
            "    @{:>7.1}ms crash pid {pid} (replica {} of group {:?})",
            t.as_ms(),
            replica_of(*pid, cfg.rf),
            group_of(*pid, cfg.rf)
        );
    }
    let victims: BTreeSet<usize> = hunter.kills().iter().map(|&(_, p)| p).collect();
    assert!(
        victims.len() >= 2,
        "the hunter must re-aim across failovers"
    );
    r.check.assert_ok();
    assert_eq!(r.completed as usize, r.issued);
    println!(
        "\n  {} kills across {} distinct leaders; {}/{} multicasts still completed, zero violations",
        hunter.kills().len(),
        victims.len(),
        r.completed,
        r.issued
    );

    // Replay: the fired-action trace is itself a timed schedule.
    let mut world2 = build_world(&cfg, &m);
    run_schedule(&mut world2, &run.to_schedule(), 100_000_000);
    let r2 = collect(&cfg, &world2);
    assert_eq!(r.events, r2.events);
    assert_eq!(r.replica_logs, r2.replica_logs);
    println!(
        "  replayed the {}-action trace as a plain schedule: identical execution ({} events)",
        run.actions.len(),
        r.events
    );

    println!(
        "\nthe reactive adversary expressed — and survived — a scenario no\n\
         pre-scripted timeline can state: every kill aimed at a leader whose\n\
         identity was decided by the previous kill."
    );
}
