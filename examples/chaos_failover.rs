//! Chaos failover walkthrough: a replicated FlexCast deployment survives
//! a scripted leader crash and a WAN partition, deterministically.
//!
//! Three FlexCast groups, each a quorum of three Paxos replicas, serve a
//! closed-loop multicast workload while a `flexcast-chaos` schedule (1)
//! crashes group 0's Paxos leader mid-multicast and (2) cuts group 1 off
//! from group 2 for over a second. The run must complete every multicast
//! with zero safety violations, replay event-for-event from the same
//! seed, and demonstrate engine state transfer via snapshot/restore.
//!
//! ```sh
//! cargo run --release --example chaos_failover
//! ```

use flexcast::chaos::{run_schedule, scenarios};
use flexcast::core_protocol::FlexCastGroup;
use flexcast::harness::replicated::{
    build_world, collect, replica_pid, ReplNode, ReplicatedConfig, ReplicatedResult,
};
use flexcast::overlay::LatencyMatrix;
use flexcast::sim::ProcessId;
use flexcast::types::GroupId;

fn matrix(n: usize) -> LatencyMatrix {
    let mut m = LatencyMatrix::zero(n);
    for a in 0..n {
        m.set_local(a, 0.5);
        for b in (a + 1)..n {
            m.set_rtt(a, b, 24.0 + 8.0 * ((a * b) % 3) as f64);
        }
    }
    m
}

fn run_once(cfg: &ReplicatedConfig, print: bool) -> (ReplicatedResult, Vec<u8>) {
    let rf = cfg.rf;
    let group1: Vec<ProcessId> = (0..rf).map(|r| replica_pid(GroupId(1), r, rf)).collect();
    let group2: Vec<ProcessId> = (0..rf).map(|r| replica_pid(GroupId(2), r, rf)).collect();

    // The schedule under test: kill group 0's initial leader at 120 ms
    // (first multicasts still in flight), partition groups 1 and 2 from
    // 400 ms to 1.6 s, bring the dead replica back at 1.8 s.
    let schedule = scenarios::crash_recover(replica_pid(GroupId(0), 0, rf), 120.0, 1_680.0)
        .merge(scenarios::wan_partition(&group1, &group2, 400.0, 1_200.0));

    let m = matrix(cfg.n_groups as usize);
    let mut world = build_world(cfg, &m);
    run_schedule(&mut world, &schedule, 100_000_000);

    // Who leads group 0 now? The crash must have moved leadership.
    if print {
        for r in 0..rf {
            if let ReplNode::Replica(a) = world.actor(replica_pid(GroupId(0), r, rf)) {
                if a.is_leader() {
                    println!("  group 0 leadership failed over to replica {r}");
                }
            }
        }
    }

    // Engine state transfer (§4.4): snapshot a survivor's engine and
    // restore it — the restored copy is interchangeable.
    let ReplNode::Replica(survivor) = world.actor(replica_pid(GroupId(0), 1, rf)) else {
        unreachable!("pid layout puts replicas first");
    };
    let snap = survivor
        .state()
        .engine()
        .snapshot()
        .expect("engine snapshots encode");
    let restored = FlexCastGroup::restore(&snap).expect("snapshots decode");
    assert_eq!(
        restored.delivered_count(),
        survivor.state().engine().delivered_count()
    );
    if print {
        println!(
            "  snapshot/restore: {} bytes capture {} deliveries of group 0",
            snap.len(),
            restored.delivered_count()
        );
    }

    (collect(cfg, &world), snap)
}

fn main() {
    let cfg = ReplicatedConfig::small(3, 3, 5);
    println!(
        "chaos failover: {} groups × {} replicas, {} clients × {} multicasts",
        cfg.n_groups, cfg.rf, cfg.n_clients, cfg.msgs_per_client
    );
    println!("  schedule: crash g0 leader @120ms (recover @1.8s), partition g1|g2 @400ms–1.6s");

    let (a, snap_a) = run_once(&cfg, true);
    a.check.assert_ok();
    assert_eq!(a.completed as usize, a.issued);
    println!(
        "  run 1: {}/{} multicasts completed, {} messages dropped by faults, {} events",
        a.completed, a.issued, a.dropped, a.events
    );

    let (b, snap_b) = run_once(&cfg, false);
    assert_eq!(a.events, b.events, "same seed, same event count");
    assert_eq!(a.replica_logs, b.replica_logs, "same seed, same logs");
    assert_eq!(snap_a, snap_b, "same seed, byte-identical snapshots");
    println!("  run 2: identical — deterministic under chaos");

    println!(
        "\nall multicasts delivered through a leader crash and a healed partition;\n\
         integrity, prefix order, acyclic order, and replica lockstep all hold."
    );
}
