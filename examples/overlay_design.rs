//! Overlay design: how the C-DAG rank order shapes FlexCast's latency.
//!
//! The paper's §5.4 shows FlexCast is sensitive to the chosen overlay
//! (O1 beats O2). This example goes further than the paper: it compares
//! the two published overlays against the identity order and a
//! deliberately bad order (seeded at the most remote region), so an
//! operator can see *why* the greedy nearest-neighbour construction works
//! — clients' frequent destination pairs should sit on adjacent ranks.
//!
//! ```sh
//! cargo run --release --example overlay_design
//! ```

use flexcast_gtpcc::WorkloadMode;
use flexcast_harness::{run, ExperimentConfig, ProtocolKind};
use flexcast_overlay::{presets, regions, CDagOrder};
use flexcast_sim::SimTime;
use flexcast_telemetry::Telemetry;
use flexcast_types::GroupId;

fn experiment(order: CDagOrder) -> ExperimentConfig {
    ExperimentConfig {
        protocol: ProtocolKind::FlexCast(order),
        locality: 0.95,
        mode: WorkloadMode::GlobalOnly,
        n_clients: 48,
        duration: SimTime::from_secs(4),
        seed: 3,
        jitter_ms: 2.0,
        flush_period: Some(SimTime::from_ms(250.0)),
        server_service_ms: 0.05,
        server_processing_ms: 20.0,
        advert_stride: None,
        telemetry: Telemetry::disabled(),
        shards: 0,
    }
}

fn main() {
    let matrix = regions::aws12();
    let candidates: Vec<(&str, CDagOrder)> = vec![
        ("O1 (greedy from London)", presets::o1()),
        ("O2 (greedy from Virginia)", presets::o2()),
        ("identity (region ids)", CDagOrder::identity(12)),
        (
            // Worst seed: start the chain at São Paulo, the most remote
            // region, so early ranks burn long links.
            "greedy from São Paulo",
            CDagOrder::nearest_neighbor_chain(&matrix, GroupId(4)),
        ),
    ];

    println!("FlexCast latency vs C-DAG rank order (gTPC-C, 95% locality)\n");
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "overlay", "1st 90p", "2nd 90p", "3rd 90p"
    );
    for (label, order) in candidates {
        let chain: Vec<String> = order
            .order()
            .iter()
            .map(|g| (g.rank() + 1).to_string())
            .collect();
        let result = run(&experiment(order));
        result.check.assert_ok();
        let row: Vec<String> = (1..=3)
            .map(|rank| {
                result
                    .percentile_row(rank)
                    .map(|(p90, _, _)| format!("{p90:10.1}"))
                    .unwrap_or_else(|| format!("{:>10}", "-"))
            })
            .collect();
        println!("{label:<28} {}", row.join(" "));
        println!("    rank order: {}", chain.join(" "));
    }
    println!("\nLower first-response latency correlates with placing each");
    println!("region's nearest neighbour on the next rank: the lca of a");
    println!("local pair then delivers immediately and forwards one hop.");
}
