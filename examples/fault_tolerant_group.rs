//! Fault tolerance (§4.4): a FlexCast group replicated with multi-Paxos.
//!
//! The paper evaluates single-process groups but prescribes state machine
//! replication for fault tolerance: replicate each group's protocol
//! engine, and the group keeps operating as long as a quorum of replicas
//! survives. This example replicates group B of a three-group deployment
//! across three Paxos replicas, crashes the leader mid-stream, elects a
//! new one, and shows that ordering is preserved and no input is lost.
//!
//! ```sh
//! cargo run --example fault_tolerant_group
//! ```

use flexcast_core::{FlexCastGroup, Output, Packet};
use flexcast_smr::{GroupEffect, ReplicatedGroup};
use flexcast_types::{ClientId, DestSet, GroupId, Message, MsgId, Payload};

/// Commands fed to the replicated engine: the two kinds of input a
/// FlexCast group consumes.
#[derive(Clone, PartialEq, Debug)]
enum Cmd {
    Client(Message),
    Peer(GroupId, Packet),
}

/// Applies a committed command to the engine; outputs are wrapped as
/// engine effects so only the leader emits them.
fn apply(engine: &mut FlexCastGroup, cmd: Cmd, out: &mut Vec<GroupEffect<Cmd>>) {
    let mut outputs = Vec::new();
    match cmd {
        Cmd::Client(m) => engine.on_client(m, &mut outputs),
        Cmd::Peer(from, pkt) => engine.on_packet(from, pkt, &mut outputs),
    }
    for o in outputs {
        // Re-encode engine outputs as commands so the effect type stays
        // uniform; a real deployment would send these to the overlay.
        match o {
            Output::Deliver(m) => out.push(GroupEffect::Engine(Cmd::Client(m))),
            Output::Send { to, pkt } => out.push(GroupEffect::Engine(Cmd::Peer(to, pkt))),
        }
    }
}

/// Routes replication traffic between live replicas until quiescence,
/// collecting leader-emitted engine effects.
fn settle(
    replicas: &mut [Option<ReplicatedGroup<FlexCastGroup, Cmd>>],
    from: u32,
    effects: Vec<GroupEffect<Cmd>>,
) -> Vec<Cmd> {
    let mut emitted = Vec::new();
    let mut queue: Vec<(u32, GroupEffect<Cmd>)> = effects.into_iter().map(|e| (from, e)).collect();
    while let Some((src, effect)) = queue.pop() {
        match effect {
            GroupEffect::Engine(cmd) => emitted.push(cmd),
            GroupEffect::Replication { to, msg } => {
                if let Some(r) = replicas[to as usize].as_mut() {
                    let mut next = Vec::new();
                    r.on_replication(src, msg, &mut next);
                    queue.extend(next.into_iter().map(|e| (to, e)));
                }
            }
            GroupEffect::SnapshotNeeded { .. } => {
                unreachable!("no compaction in this example")
            }
        }
    }
    emitted
}

fn main() {
    const B: GroupId = GroupId(1);
    let n_groups = 3u16;
    let n_replicas = 3u32;

    // Three replicas of group B, each holding its own engine copy.
    let mut replicas: Vec<Option<ReplicatedGroup<FlexCastGroup, Cmd>>> = (0..n_replicas)
        .map(|i| {
            Some(ReplicatedGroup::new(
                i,
                n_replicas,
                FlexCastGroup::new(B, n_groups),
                apply,
            ))
        })
        .collect();

    // Replica 0 becomes the initial leader.
    let mut out = Vec::new();
    replicas[0].as_mut().unwrap().start_election(&mut out);
    settle(&mut replicas, 0, out);
    println!("replica 0 elected leader of group B");

    let msg = |seq: u32, ranks: &[u16]| {
        Message::new(
            MsgId::new(ClientId(5), seq),
            DestSet::try_from_ranks(ranks.iter().copied()).unwrap(),
            Payload::empty(),
        )
        .unwrap()
    };

    // Two multicasts with lca B arrive and replicate.
    let m1 = msg(1, &[1, 2]);
    let m2 = msg(2, &[1, 2]);
    let mut out = Vec::new();
    replicas[0]
        .as_mut()
        .unwrap()
        .submit(Cmd::Client(m1.clone()), &mut out);
    let fx1 = settle(&mut replicas, 0, out);
    println!(
        "m1 committed; leader emitted {} effects (deliver + forward to C)",
        fx1.len()
    );

    // Leader crashes before m2 is even proposed.
    replicas[0] = None;
    println!("leader (replica 0) crashed");

    // Replica 1 takes over; the group must keep working.
    let mut out = Vec::new();
    replicas[1].as_mut().unwrap().start_election(&mut out);
    settle(&mut replicas, 1, out);
    assert!(replicas[1].as_ref().unwrap().is_leader());
    println!("replica 1 elected leader");

    let mut out = Vec::new();
    replicas[1]
        .as_mut()
        .unwrap()
        .submit(Cmd::Client(m2.clone()), &mut out);
    let fx2 = settle(&mut replicas, 1, out);
    println!("m2 committed under the new leader; {} effects", fx2.len());

    // Every surviving replica's engine delivered both, in the same order.
    for (i, r) in replicas.iter().enumerate() {
        if let Some(r) = r {
            let e = r.engine();
            assert!(e.has_delivered(m1.id), "replica {i} lost m1");
            assert!(e.has_delivered(m2.id), "replica {i} lost m2");
        }
    }
    println!("\nboth surviving replicas delivered m1 and m2 in log order —");
    println!("group B survived a leader crash without losing a message.");
}
