//! Offline, API-compatible subset of [serde](https://serde.rs).
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the slice of serde's data model that the
//! FlexCast crates actually exercise: the `Serialize`/`Deserialize`
//! traits, the `Serializer`/`Deserializer` traits with all compound
//! access types, visitor plumbing, `IntoDeserializer`, and derive macros
//! for plain structs and enums (no `#[serde(...)]` attributes).
//!
//! The subset is faithful: the trait signatures match upstream serde, so
//! swapping in the real crate later is a manifest-only change.

pub mod de;
mod impls;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

pub use serde_derive::{Deserialize, Serialize};
