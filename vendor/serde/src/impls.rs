//! `Serialize`/`Deserialize` implementations for std types.

use crate::de::{self, Deserialize, Deserializer, Visitor};
use crate::ser::{Serialize, SerializeMap, SerializeSeq, SerializeTuple, Serializer};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------------

macro_rules! primitive {
    ($ty:ty, $ser:ident, $deser:ident, $visit:ident, $expect:literal) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str($expect)
                    }
                    fn $visit<E: de::Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$deser(V)
            }
        }
    };
}

primitive!(bool, serialize_bool, deserialize_bool, visit_bool, "a bool");
primitive!(i8, serialize_i8, deserialize_i8, visit_i8, "an i8");
primitive!(i16, serialize_i16, deserialize_i16, visit_i16, "an i16");
primitive!(i32, serialize_i32, deserialize_i32, visit_i32, "an i32");
primitive!(i64, serialize_i64, deserialize_i64, visit_i64, "an i64");
primitive!(
    i128,
    serialize_i128,
    deserialize_i128,
    visit_i128,
    "an i128"
);
primitive!(u8, serialize_u8, deserialize_u8, visit_u8, "a u8");
primitive!(u16, serialize_u16, deserialize_u16, visit_u16, "a u16");
primitive!(u32, serialize_u32, deserialize_u32, visit_u32, "a u32");
primitive!(u64, serialize_u64, deserialize_u64, visit_u64, "a u64");
primitive!(u128, serialize_u128, deserialize_u128, visit_u128, "a u128");
primitive!(f32, serialize_f32, deserialize_f32, visit_f32, "an f32");
primitive!(f64, serialize_f64, deserialize_f64, visit_f64, "an f64");
primitive!(char, serialize_char, deserialize_char, visit_char, "a char");

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| de::Error::custom("usize out of range"))
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        isize::try_from(v).map_err(|_| de::Error::custom("isize out of range"))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: de::Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

// ---------------------------------------------------------------------------
// Strings.
// ---------------------------------------------------------------------------

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

// ---------------------------------------------------------------------------
// References and boxes.
// ---------------------------------------------------------------------------

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// Option.
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Sequences.
// ---------------------------------------------------------------------------

fn serialize_iter<S, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize, H> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

struct SeqVisitor<C, T> {
    expect: &'static str,
    marker: PhantomData<(C, T)>,
}

impl<'de, C, T> Visitor<'de> for SeqVisitor<C, T>
where
    C: Default + Extend<T>,
    T: Deserialize<'de>,
{
    type Value = C;
    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str(self.expect)
    }
    fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<C, A::Error> {
        let mut out = C::default();
        while let Some(item) = seq.next_element::<T>()? {
            out.extend(std::iter::once(item));
        }
        Ok(out)
    }
}

macro_rules! seq_deserialize {
    ($ty:ident $(, $bound:path)*) => {
        impl<'de, T: Deserialize<'de> $(+ $bound)*> Deserialize<'de> for $ty<T> {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                deserializer.deserialize_seq(SeqVisitor {
                    expect: concat!("a ", stringify!($ty)),
                    marker: PhantomData,
                })
            }
        }
    };
}

seq_deserialize!(Vec);
seq_deserialize!(VecDeque);
seq_deserialize!(BTreeSet, Ord);

impl<'de, T, H> Deserialize<'de> for HashSet<T, H>
where
    T: Deserialize<'de> + Eq + Hash,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, H>(PhantomData<(T, H)>);
        impl<'de, T, H> Visitor<'de> for V<T, H>
        where
            T: Deserialize<'de> + Eq + Hash,
            H: BuildHasher + Default,
        {
            type Value = HashSet<T, H>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a set")
            }
            fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out =
                    HashSet::with_capacity_and_hasher(seq.size_hint().unwrap_or(0), H::default());
                while let Some(item) = seq.next_element::<T>()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Maps.
// ---------------------------------------------------------------------------

macro_rules! map_serialize {
    ($ty:ident $(, $hasher:ident)?) => {
        impl<K: Serialize, V: Serialize $(, $hasher)?> Serialize for $ty<K, V $(, $hasher)?> {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut map = serializer.serialize_map(Some(self.len()))?;
                for (k, v) in self {
                    map.serialize_entry(k, v)?;
                }
                map.end()
            }
        }
    };
}

map_serialize!(BTreeMap);
map_serialize!(HashMap, H);

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for Vis<K, V> {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((k, v)) = map.next_entry::<K, V>()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for Vis<K, V, H>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
            H: BuildHasher + Default,
        {
            type Value = HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out =
                    HashMap::with_capacity_and_hasher(map.size_hint().unwrap_or(0), H::default());
                while let Some((k, v)) = map.next_entry::<K, V>()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Tuples.
// ---------------------------------------------------------------------------

macro_rules! tuple_impl {
    ($len:expr => $(($idx:tt $name:ident $field:ident))+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                struct V<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for V<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str(concat!("a tuple of length ", $len))
                    }
                    fn visit_seq<__A: de::SeqAccess<'de>>(
                        self,
                        mut seq: __A,
                    ) -> Result<Self::Value, __A::Error> {
                        $(
                            let $field = seq
                                .next_element::<$name>()?
                                .ok_or_else(|| de::Error::custom("tuple too short"))?;
                        )+
                        Ok(($($field,)+))
                    }
                }
                deserializer.deserialize_tuple($len, V(PhantomData))
            }
        }
    };
}

tuple_impl!(1 => (0 A a));
tuple_impl!(2 => (0 A a) (1 B b));
tuple_impl!(3 => (0 A a) (1 B b) (2 C c));
tuple_impl!(4 => (0 A a) (1 B b) (2 C c) (3 D d));
tuple_impl!(5 => (0 A a) (1 B b) (2 C c) (3 D d) (4 E e));
tuple_impl!(6 => (0 A a) (1 B b) (2 C c) (3 D d) (4 E e) (5 F f));
