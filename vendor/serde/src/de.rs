//! Deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Trait implemented by deserializer error types.
pub trait Error: Sized + std::error::Error {
    /// Builds a custom error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// A stateful form of `Deserialize`, used by collection visitors.
pub trait DeserializeSeed<'de>: Sized {
    /// The value produced.
    type Value;
    /// Deserializes the value using `self`'s state.
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

/// A data format that can deserialize any serde data structure.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;

    /// Hints that the format should decide the type (self-describing only).
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i128`.
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u128`.
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a string slice.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes borrowed bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a fixed-length tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct field name or enum variant name.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skips over a value of any type.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Whether the format is human readable.
    fn is_human_readable(&self) -> bool {
        true
    }
}

fn unexpected<V, E: Error>(what: &str) -> Result<V, E> {
    Err(E::custom(format!("unexpected {what}")))
}

/// Walks the values produced by a `Deserializer`, building `Self::Value`.
///
/// Every `visit_*` method has a default that either forwards to the wider
/// integer/float/string form (mirroring upstream serde's forwarding rules)
/// or reports a type mismatch.
pub trait Visitor<'de>: Sized {
    /// The value built by this visitor.
    type Value;

    /// Formats a message stating what the visitor expects.
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result;

    /// Visits a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        let _ = v;
        unexpected("bool")
    }
    /// Visits an `i8` (forwards to `visit_i64`).
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visits an `i16` (forwards to `visit_i64`).
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visits an `i32` (forwards to `visit_i64`).
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visits an `i64`.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        unexpected("i64")
    }
    /// Visits an `i128`.
    fn visit_i128<E: Error>(self, v: i128) -> Result<Self::Value, E> {
        let _ = v;
        unexpected("i128")
    }
    /// Visits a `u8` (forwards to `visit_u64`).
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visits a `u16` (forwards to `visit_u64`).
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visits a `u32` (forwards to `visit_u64`).
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visits a `u64`.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        let _ = v;
        unexpected("u64")
    }
    /// Visits a `u128`.
    fn visit_u128<E: Error>(self, v: u128) -> Result<Self::Value, E> {
        let _ = v;
        unexpected("u128")
    }
    /// Visits an `f32` (forwards to `visit_f64`).
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    /// Visits an `f64`.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        unexpected("f64")
    }
    /// Visits a `char`.
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        let _ = v;
        unexpected("char")
    }
    /// Visits a transient string slice.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        unexpected("str")
    }
    /// Visits a string borrowed from the input (forwards to `visit_str`).
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    /// Visits an owned string (forwards to `visit_str`).
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Visits transient bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        unexpected("bytes")
    }
    /// Visits bytes borrowed from the input (forwards to `visit_bytes`).
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    /// Visits an owned byte buffer (forwards to `visit_bytes`).
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    /// Visits an absent `Option`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        unexpected("none")
    }
    /// Visits a present `Option`.
    fn visit_some<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>,
    {
        let _ = deserializer;
        unexpected("some")
    }
    /// Visits `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        unexpected("unit")
    }
    /// Visits a newtype struct's contents.
    fn visit_newtype_struct<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>,
    {
        let _ = deserializer;
        unexpected("newtype struct")
    }
    /// Visits a sequence.
    fn visit_seq<A>(self, seq: A) -> Result<Self::Value, A::Error>
    where
        A: SeqAccess<'de>,
    {
        let _ = seq;
        unexpected("sequence")
    }
    /// Visits a map.
    fn visit_map<A>(self, map: A) -> Result<Self::Value, A::Error>
    where
        A: MapAccess<'de>,
    {
        let _ = map;
        unexpected("map")
    }
    /// Visits an enum.
    fn visit_enum<A>(self, data: A) -> Result<Self::Value, A::Error>
    where
        A: EnumAccess<'de>,
    {
        let _ = data;
        unexpected("enum")
    }
}

/// Provides a visitor access to the elements of a sequence.
pub trait SeqAccess<'de> {
    /// Error produced on failure.
    type Error: Error;
    /// Deserializes the next element using a seed.
    fn next_element_seed<T>(&mut self, seed: T) -> Result<Option<T::Value>, Self::Error>
    where
        T: DeserializeSeed<'de>;
    /// Deserializes the next element.
    fn next_element<T>(&mut self) -> Result<Option<T>, Self::Error>
    where
        T: Deserialize<'de>,
    {
        self.next_element_seed(PhantomData)
    }
    /// Remaining element count, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Provides a visitor access to the entries of a map.
pub trait MapAccess<'de> {
    /// Error produced on failure.
    type Error: Error;
    /// Deserializes the next key using a seed.
    fn next_key_seed<K>(&mut self, seed: K) -> Result<Option<K::Value>, Self::Error>
    where
        K: DeserializeSeed<'de>;
    /// Deserializes the next value using a seed.
    fn next_value_seed<V>(&mut self, seed: V) -> Result<V::Value, Self::Error>
    where
        V: DeserializeSeed<'de>;
    /// Deserializes the next key.
    fn next_key<K>(&mut self) -> Result<Option<K>, Self::Error>
    where
        K: Deserialize<'de>,
    {
        self.next_key_seed(PhantomData)
    }
    /// Deserializes the next value.
    fn next_value<V>(&mut self) -> Result<V, Self::Error>
    where
        V: Deserialize<'de>,
    {
        self.next_value_seed(PhantomData)
    }
    /// Deserializes the next entry.
    fn next_entry<K, V>(&mut self) -> Result<Option<(K, V)>, Self::Error>
    where
        K: Deserialize<'de>,
        V: Deserialize<'de>,
    {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }
    /// Remaining entry count, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Provides a visitor access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;
    /// Access to the variant's contents.
    type Variant: VariantAccess<'de, Error = Self::Error>;
    /// Deserializes the variant tag using a seed.
    fn variant_seed<V>(self, seed: V) -> Result<(V::Value, Self::Variant), Self::Error>
    where
        V: DeserializeSeed<'de>;
    /// Deserializes the variant tag.
    fn variant<V>(self) -> Result<(V, Self::Variant), Self::Error>
    where
        V: Deserialize<'de>,
    {
        self.variant_seed(PhantomData)
    }
}

/// Provides access to the contents of a single enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;
    /// Finishes a unit variant.
    fn unit_variant(self) -> Result<(), Self::Error>;
    /// Deserializes a newtype variant's payload using a seed.
    fn newtype_variant_seed<T>(self, seed: T) -> Result<T::Value, Self::Error>
    where
        T: DeserializeSeed<'de>;
    /// Deserializes a newtype variant's payload.
    fn newtype_variant<T>(self) -> Result<T, Self::Error>
    where
        T: Deserialize<'de>,
    {
        self.newtype_variant_seed(PhantomData)
    }
    /// Deserializes a tuple variant's payload.
    fn tuple_variant<V>(self, len: usize, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a struct variant's payload.
    fn struct_variant<V>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
}

/// Converts a value into a `Deserializer` yielding that value.
pub trait IntoDeserializer<'de, E: Error = value::Error> {
    /// The deserializer produced.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Performs the conversion.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Self-deserializing primitive wrappers and a plain string error type.
pub mod value {
    use super::{Deserializer, IntoDeserializer, Visitor};
    use std::fmt;
    use std::marker::PhantomData;

    /// A plain string deserialization error.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
    impl std::error::Error for Error {}
    impl super::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }
    impl crate::ser::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    macro_rules! primitive_deserializer {
        ($ty:ty, $name:ident, $visit:ident) => {
            /// A deserializer holding one primitive value.
            pub struct $name<E> {
                value: $ty,
                marker: PhantomData<E>,
            }

            impl<'de, E: super::Error> IntoDeserializer<'de, E> for $ty {
                type Deserializer = $name<E>;
                fn into_deserializer(self) -> $name<E> {
                    $name {
                        value: self,
                        marker: PhantomData,
                    }
                }
            }

            impl<'de, E: super::Error> Deserializer<'de> for $name<E> {
                type Error = E;

                fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                    visitor.$visit(self.value)
                }

                forward_to_any! {
                    deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32
                    deserialize_i64 deserialize_i128 deserialize_u8 deserialize_u16
                    deserialize_u32 deserialize_u64 deserialize_u128 deserialize_f32
                    deserialize_f64 deserialize_char deserialize_str deserialize_string
                    deserialize_bytes deserialize_byte_buf deserialize_option
                    deserialize_unit deserialize_seq deserialize_map
                    deserialize_identifier deserialize_ignored_any
                }

                fn deserialize_unit_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_newtype_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_tuple<V: Visitor<'de>>(
                    self,
                    _len: usize,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_tuple_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _len: usize,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _fields: &'static [&'static str],
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_enum<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _variants: &'static [&'static str],
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
            }
        };
    }

    macro_rules! forward_to_any {
        ($($method:ident)*) => {
            $(
                fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
            )*
        };
    }
    primitive_deserializer!(u8, U8Deserializer, visit_u8);
    primitive_deserializer!(u16, U16Deserializer, visit_u16);
    primitive_deserializer!(u32, U32Deserializer, visit_u32);
    primitive_deserializer!(u64, U64Deserializer, visit_u64);
}
