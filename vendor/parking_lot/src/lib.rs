//! Offline, API-compatible subset of [parking_lot](https://docs.rs/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly. A poisoned std lock (a panic while
//! holding the guard) is recovered into the inner data, matching
//! parking_lot's behaviour of not propagating poison.

use std::sync;

/// A mutex that does not expose lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not expose lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
