//! Offline, API-compatible subset of [rand 0.9](https://docs.rs/rand).
//!
//! Provides `StdRng` (xoshiro256++ seeded via SplitMix64), `SeedableRng`,
//! and the `Rng` extension methods the workspace uses: `random::<T>()`
//! and `random_range(..)` over integer and float ranges. Statistical
//! quality matches the underlying xoshiro256++ generator; the stream is
//! deterministic per seed but does NOT match upstream `StdRng`'s ChaCha12
//! stream, which is fine for the simulators here (any fixed high-quality
//! stream works — determinism per seed is what experiments rely on).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard RNG: xoshiro256++.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types producible by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Samples a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_uniform_int {
    ($($ty:ty),*) => {
        $(
            impl StandardUniform for $ty {
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

standard_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "empty range in random_range");
                    let span = (self.end as u128) - (self.start as u128);
                    let v = (u128::from(rng.next_u64()) | (u128::from(rng.next_u64()) << 64)) % span;
                    ((self.start as u128) + v) as $ty
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range in random_range");
                    let span = (end as u128) - (start as u128) + 1;
                    let v = (u128::from(rng.next_u64()) | (u128::from(rng.next_u64()) << 64)) % span;
                    ((start as u128) + v) as $ty
                }
            }
        )*
    };
}

sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! sample_range_signed {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "empty range in random_range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (u128::from(rng.next_u64()) | (u128::from(rng.next_u64()) << 64)) % span;
                    (self.start as i128 + v as i128) as $ty
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range in random_range");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let v = (u128::from(rng.next_u64()) | (u128::from(rng.next_u64()) << 64)) % span;
                    (start as i128 + v as i128) as $ty
                }
            }
        )*
    };
}

sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// User-facing random value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniformly distributed random value.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns a random value in the given range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// RNG namespace mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u16 = r.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = r.random_range(5..=15);
            assert!((5..=15).contains(&w));
            let f: f64 = r.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
