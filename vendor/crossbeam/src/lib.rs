//! Offline, API-compatible subset of [crossbeam](https://docs.rs/crossbeam).
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! `Sender` is `Clone` (mpsc supports multi-producer natively); `Receiver`
//! keeps mpsc's single-consumer restriction, which is all the workspace
//! needs (each runtime funnels into one consumer).

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.recv().map_err(|_| RecvTimeoutError::Disconnected)
        }

        /// Blocks until a message arrives, the timeout expires, or all
        /// senders disconnect.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns an iterator over already-queued messages (non-blocking).
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }

        /// Returns a blocking iterator that ends when senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_clone() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(1));
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2]);
        }
    }
}
