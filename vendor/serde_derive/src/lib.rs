//! Derive macros for the vendored serde subset.
//!
//! The build environment has no crates.io access, so these derives are
//! written against the bare `proc_macro` API (no `syn`/`quote`). They
//! support what the FlexCast crates use: plain structs (unit, tuple,
//! named) and enums (unit, newtype, tuple, struct variants), with at most
//! simple type parameters and no `#[serde(...)]` attributes. Generated
//! code follows upstream serde's externally-indexed data model: structs
//! as field sequences, enum variants by declaration index.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed shape of the derive input.
// ---------------------------------------------------------------------------

enum Fields {
    Unit,
    Unnamed(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    /// Type parameter identifiers, in declaration order.
    generics: Vec<String>,
    data: Data,
}

// ---------------------------------------------------------------------------
// Token cursor.
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if self.at_punct(ch) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_any_ident(&mut self, what: &str) -> String {
        match self.bump() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }

    /// Skips `#[...]` outer attributes (doc comments included).
    fn skip_attrs(&mut self) {
        while self.at_punct('#') {
            self.pos += 1; // '#'
            match self.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                other => panic!("serde_derive: malformed attribute, found {other:?}"),
            }
        }
    }

    /// Skips `pub`, `pub(...)`.
    fn skip_vis(&mut self) {
        if self.at_ident("pub") {
            self.pos += 1;
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skips tokens until a comma at angle-bracket depth zero, or the end.
    /// Returns whether a comma was consumed.
    fn skip_to_top_level_comma(&mut self) -> bool {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        self.pos += 1;
                        return true;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Input parsing.
// ---------------------------------------------------------------------------

fn parse_input(stream: TokenStream) -> Input {
    let mut c = Cursor::new(stream);
    c.skip_attrs();
    c.skip_vis();

    let kind = c.expect_any_ident("`struct` or `enum`");
    let name = c.expect_any_ident("type name");
    let generics = parse_generics(&mut c);

    if c.at_ident("where") {
        panic!("serde_derive: `where` clauses are not supported by the vendored derive");
    }

    let data = match kind.as_str() {
        "struct" => Data::Struct(parse_struct_body(&mut c)),
        "enum" => Data::Enum(parse_enum_body(&mut c)),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Input {
        name,
        generics,
        data,
    }
}

fn parse_generics(c: &mut Cursor) -> Vec<String> {
    let mut params = Vec::new();
    if !c.eat_punct('<') {
        return params;
    }
    let mut depth = 1i32;
    let mut param_tokens: Vec<TokenTree> = Vec::new();
    let mut segments: Vec<Vec<TokenTree>> = Vec::new();
    while let Some(t) = c.bump() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ',' if depth == 1 => {
                    segments.push(std::mem::take(&mut param_tokens));
                    continue;
                }
                _ => {}
            }
        }
        param_tokens.push(t);
    }
    if !param_tokens.is_empty() {
        segments.push(param_tokens);
    }
    for seg in segments {
        let mut iter = seg.iter();
        match iter.next() {
            // Lifetimes start with a `'` punct; skip them.
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => continue,
            Some(TokenTree::Ident(i)) if i.to_string() == "const" => {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    params.push(n.to_string());
                }
            }
            Some(TokenTree::Ident(i)) => params.push(i.to_string()),
            other => panic!("serde_derive: unsupported generic parameter, found {other:?}"),
        }
    }
    params
}

fn parse_struct_body(c: &mut Cursor) -> Fields {
    match c.bump() {
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Unnamed(count_unnamed_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        other => panic!("serde_derive: unsupported struct body, found {other:?}"),
    }
}

fn count_unnamed_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0usize;
    loop {
        c.skip_attrs();
        c.skip_vis();
        if c.peek().is_none() {
            break;
        }
        count += 1;
        if !c.skip_to_top_level_comma() {
            break;
        }
    }
    count
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_vis();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_any_ident("field name");
        if !c.eat_punct(':') {
            panic!("serde_derive: expected `:` after field `{name}`");
        }
        fields.push(name);
        if !c.skip_to_top_level_comma() {
            break;
        }
    }
    fields
}

fn parse_enum_body(c: &mut Cursor) -> Vec<Variant> {
    let group = match c.bump() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("serde_derive: expected enum body, found {other:?}"),
    };
    let mut c = Cursor::new(group.stream());
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_any_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Unnamed(count_unnamed_fields(g.stream()));
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                c.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional explicit discriminant and the trailing comma.
        if !c.skip_to_top_level_comma() {
            break;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation helpers.
// ---------------------------------------------------------------------------

/// `<A, B>` or the empty string.
fn type_args(generics: &[String]) -> String {
    if generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", generics.join(", "))
    }
}

/// Bounded impl-parameter list: each parameter bounded by `bound`.
fn bounded_params(generics: &[String], bound: &str) -> String {
    generics
        .iter()
        .map(|g| format!("{g}: {bound}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Declares a visitor tuple struct carrying the type parameters.
fn visitor_decl(visitor: &str, generics: &[String]) -> String {
    let phantom_ty = if generics.is_empty() {
        "()".to_string()
    } else {
        format!("({},)", generics.join(", "))
    };
    format!(
        "struct {visitor}{}(core::marker::PhantomData<fn() -> {phantom_ty}>);",
        type_args(generics)
    )
}

/// A `visit_seq` body that pulls `n` fields and builds `construct`.
///
/// `construct` receives field bindings named `__field0..`.
fn visit_seq_fn(n: usize, construct: &str) -> String {
    let mut out = String::new();
    out.push_str(
        "fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
         -> core::result::Result<Self::Value, __A::Error> {\n",
    );
    for i in 0..n {
        out.push_str(&format!(
            "let __field{i} = match serde::de::SeqAccess::next_element(&mut __seq)? {{ \
             core::option::Option::Some(__v) => __v, \
             core::option::Option::None => return core::result::Result::Err(\
             serde::de::Error::custom(\"sequence ended before field {i}\")) }};\n"
        ));
    }
    out.push_str(&format!("core::result::Result::Ok({construct})\n}}\n"));
    out
}

fn field_list(n: usize) -> String {
    (0..n)
        .map(|i| format!("__field{i}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn named_construct(path: &str, names: &[String]) -> String {
    let inits = names
        .iter()
        .enumerate()
        .map(|(i, f)| format!("{f}: __field{i}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("{path} {{ {inits} }}")
}

fn str_array(items: &[String]) -> String {
    let quoted = items
        .iter()
        .map(|s| format!("\"{s}\""))
        .collect::<Vec<_>>()
        .join(", ");
    format!("&[{quoted}]")
}

// ---------------------------------------------------------------------------
// Serialize derive.
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let args = type_args(&input.generics);
    let params = bounded_params(&input.generics, "serde::ser::Serialize");
    let impl_header = if params.is_empty() {
        format!("impl serde::ser::Serialize for {name}")
    } else {
        format!("impl<{params}> serde::ser::Serialize for {name}{args}")
    };

    let body = match &input.data {
        Data::Struct(fields) => serialize_struct_body(name, fields),
        Data::Enum(variants) => serialize_enum_body(name, variants),
    };

    let out = format!(
        "#[automatically_derived]\n{impl_header} {{\n\
         fn serialize<__S: serde::ser::Serializer>(&self, __serializer: __S) \
         -> core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    );
    out.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

fn serialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => {
            format!("serde::ser::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Fields::Unnamed(0) => {
            format!("serde::ser::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Fields::Unnamed(1) => format!(
            "serde::ser::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
        ),
        Fields::Unnamed(n) => {
            let mut out = format!(
                "let mut __state = serde::ser::Serializer::serialize_tuple_struct(\
                 __serializer, \"{name}\", {n}usize)?;\n"
            );
            for i in 0..*n {
                out.push_str(&format!(
                    "serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{i})?;\n"
                ));
            }
            out.push_str("serde::ser::SerializeTupleStruct::end(__state)");
            out
        }
        Fields::Named(names) => {
            let n = names.len();
            let mut out = format!(
                "let mut __state = serde::ser::Serializer::serialize_struct(\
                 __serializer, \"{name}\", {n}usize)?;\n"
            );
            for f in names {
                out.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut __state, \"{f}\", &self.{f})?;\n"
                ));
            }
            out.push_str("serde::ser::SerializeStruct::end(__state)");
            out
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit | Fields::Unnamed(0) => {
                arms.push_str(&format!(
                    "Self::{vname} => serde::ser::Serializer::serialize_unit_variant(\
                     __serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                ));
            }
            Fields::Unnamed(1) => {
                arms.push_str(&format!(
                    "Self::{vname}(__field0) => serde::ser::Serializer::serialize_newtype_variant(\
                     __serializer, \"{name}\", {idx}u32, \"{vname}\", __field0),\n"
                ));
            }
            Fields::Unnamed(n) => {
                let binds = field_list(*n);
                let mut arm = format!(
                    "Self::{vname}({binds}) => {{\n\
                     let mut __state = serde::ser::Serializer::serialize_tuple_variant(\
                     __serializer, \"{name}\", {idx}u32, \"{vname}\", {n}usize)?;\n"
                );
                for i in 0..*n {
                    arm.push_str(&format!(
                        "serde::ser::SerializeTupleVariant::serialize_field(&mut __state, __field{i})?;\n"
                    ));
                }
                arm.push_str("serde::ser::SerializeTupleVariant::end(__state)\n},\n");
                arms.push_str(&arm);
            }
            Fields::Named(names) => {
                let n = names.len();
                let binds = names.join(", ");
                let mut arm = format!(
                    "Self::{vname} {{ {binds} }} => {{\n\
                     let mut __state = serde::ser::Serializer::serialize_struct_variant(\
                     __serializer, \"{name}\", {idx}u32, \"{vname}\", {n}usize)?;\n"
                );
                for f in names {
                    arm.push_str(&format!(
                        "serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{f}\", {f})?;\n"
                    ));
                }
                arm.push_str("serde::ser::SerializeStructVariant::end(__state)\n},\n");
                arms.push_str(&arm);
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------------
// Deserialize derive.
// ---------------------------------------------------------------------------

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let args = type_args(&input.generics);
    let params = bounded_params(&input.generics, "serde::de::Deserialize<'de>");
    let impl_header = if params.is_empty() {
        format!("impl<'de> serde::de::Deserialize<'de> for {name}")
    } else {
        format!("impl<'de, {params}> serde::de::Deserialize<'de> for {name}{args}")
    };
    let visitor_impl_params = if params.is_empty() {
        "'de".to_string()
    } else {
        format!("'de, {params}")
    };

    let body = match &input.data {
        Data::Struct(fields) => {
            deserialize_struct_body(name, &input.generics, &visitor_impl_params, fields)
        }
        Data::Enum(variants) => {
            deserialize_enum_body(name, &input.generics, &visitor_impl_params, variants)
        }
    };

    let out = format!(
        "#[automatically_derived]\n{impl_header} {{\n\
         fn deserialize<__D: serde::de::Deserializer<'de>>(__deserializer: __D) \
         -> core::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}\n"
    );
    out.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

fn expecting_fn(text: &str) -> String {
    format!(
        "fn expecting(&self, __f: &mut core::fmt::Formatter) -> core::fmt::Result {{\n\
         __f.write_str(\"{text}\")\n}}\n"
    )
}

fn deserialize_struct_body(
    name: &str,
    generics: &[String],
    visitor_impl_params: &str,
    fields: &Fields,
) -> String {
    let args = type_args(generics);
    let decl = visitor_decl("__Visitor", generics);
    let expecting = expecting_fn(&format!("struct {name}"));

    let (visit_fns, drive) = match fields {
        Fields::Unit | Fields::Unnamed(0) => (
            format!(
                "fn visit_unit<__E: serde::de::Error>(self) -> core::result::Result<Self::Value, __E> {{\n\
                 core::result::Result::Ok({name})\n}}\n"
            ),
            format!(
                "serde::de::Deserializer::deserialize_unit_struct(\
                 __deserializer, \"{name}\", __Visitor(core::marker::PhantomData))"
            ),
        ),
        Fields::Unnamed(1) => (
            format!(
                "fn visit_newtype_struct<__D2: serde::de::Deserializer<'de>>(self, __d: __D2) \
                 -> core::result::Result<Self::Value, __D2::Error> {{\n\
                 core::result::Result::Ok({name}(serde::de::Deserialize::deserialize(__d)?))\n}}\n{}",
                visit_seq_fn(1, &format!("{name}(__field0)"))
            ),
            format!(
                "serde::de::Deserializer::deserialize_newtype_struct(\
                 __deserializer, \"{name}\", __Visitor(core::marker::PhantomData))"
            ),
        ),
        Fields::Unnamed(n) => (
            visit_seq_fn(*n, &format!("{name}({})", field_list(*n))),
            format!(
                "serde::de::Deserializer::deserialize_tuple_struct(\
                 __deserializer, \"{name}\", {n}usize, __Visitor(core::marker::PhantomData))"
            ),
        ),
        Fields::Named(names) => (
            visit_seq_fn(names.len(), &named_construct(name, names)),
            format!(
                "serde::de::Deserializer::deserialize_struct(\
                 __deserializer, \"{name}\", {}, __Visitor(core::marker::PhantomData))",
                str_array(names)
            ),
        ),
    };

    format!(
        "{decl}\n\
         impl<{visitor_impl_params}> serde::de::Visitor<'de> for __Visitor{args} {{\n\
         type Value = {name}{args};\n{expecting}{visit_fns}}}\n{drive}"
    )
}

fn deserialize_enum_body(
    name: &str,
    generics: &[String],
    visitor_impl_params: &str,
    variants: &[Variant],
) -> String {
    let args = type_args(generics);
    let decl = visitor_decl("__Visitor", generics);
    let expecting = expecting_fn(&format!("enum {name}"));
    let variant_names: Vec<String> = variants.iter().map(|v| v.name.clone()).collect();

    let mut arms = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit | Fields::Unnamed(0) => {
                arms.push_str(&format!(
                    "{idx}u32 => {{\nserde::de::VariantAccess::unit_variant(__variant)?;\n\
                     core::result::Result::Ok({name}::{vname})\n}},\n"
                ));
            }
            Fields::Unnamed(1) => {
                arms.push_str(&format!(
                    "{idx}u32 => core::result::Result::Ok({name}::{vname}(\
                     serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                ));
            }
            Fields::Unnamed(n) => {
                let inner = format!("__TupleVisitor{idx}");
                let inner_decl = visitor_decl(&inner, generics);
                let seq = visit_seq_fn(*n, &format!("{name}::{vname}({})", field_list(*n)));
                let inner_expecting = expecting_fn(&format!("tuple variant {name}::{vname}"));
                arms.push_str(&format!(
                    "{idx}u32 => {{\n{inner_decl}\n\
                     impl<{visitor_impl_params}> serde::de::Visitor<'de> for {inner}{args} {{\n\
                     type Value = {name}{args};\n{inner_expecting}{seq}}}\n\
                     serde::de::VariantAccess::tuple_variant(\
                     __variant, {n}usize, {inner}(core::marker::PhantomData))\n}},\n"
                ));
            }
            Fields::Named(names) => {
                let inner = format!("__StructVisitor{idx}");
                let inner_decl = visitor_decl(&inner, generics);
                let seq = visit_seq_fn(
                    names.len(),
                    &named_construct(&format!("{name}::{vname}"), names),
                );
                let inner_expecting = expecting_fn(&format!("struct variant {name}::{vname}"));
                arms.push_str(&format!(
                    "{idx}u32 => {{\n{inner_decl}\n\
                     impl<{visitor_impl_params}> serde::de::Visitor<'de> for {inner}{args} {{\n\
                     type Value = {name}{args};\n{inner_expecting}{seq}}}\n\
                     serde::de::VariantAccess::struct_variant(\
                     __variant, {}, {inner}(core::marker::PhantomData))\n}},\n",
                    str_array(names)
                ));
            }
        }
    }

    format!(
        "{decl}\n\
         impl<{visitor_impl_params}> serde::de::Visitor<'de> for __Visitor{args} {{\n\
         type Value = {name}{args};\n{expecting}\
         fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A) \
         -> core::result::Result<Self::Value, __A::Error> {{\n\
         let (__idx, __variant): (u32, __A::Variant) = serde::de::EnumAccess::variant::<u32>(__data)?;\n\
         match __idx {{\n{arms}\
         _ => core::result::Result::Err(serde::de::Error::custom(\"invalid variant index\")),\n\
         }}\n}}\n}}\n\
         serde::de::Deserializer::deserialize_enum(\
         __deserializer, \"{name}\", {}, __Visitor(core::marker::PhantomData))",
        str_array(&variant_names)
    )
}
