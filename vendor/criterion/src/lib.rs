//! Offline, API-compatible subset of [criterion](https://docs.rs/criterion).
//!
//! A small wall-clock benchmark harness: each `Bencher::iter` call runs a
//! short warmup, then samples the closure until the configured
//! measurement time (default 500ms, clamped for CI friendliness) and
//! reports mean time per iteration. No statistics, plots, or comparisons
//! — just honest timings so `cargo bench` works air-gapped.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` for API compatibility.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; the stub has no arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.measurement_time, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Caps how long each benchmark in the group measures.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        // Clamp so paper-scale measurement budgets stay CI-friendly.
        self.measurement_time = t.min(Duration::from_secs(3));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.measurement_time);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", name.into(), param),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            repr: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Passed to benchmark closures; `iter` does the timing.
pub struct Bencher {
    measurement_time: Duration,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    fn new(measurement_time: Duration) -> Self {
        Bencher {
            measurement_time,
            result: None,
        }
    }

    /// Times `f`, storing iterations and total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and per-iteration cost estimate.
        let warmup_start = Instant::now();
        black_box(f());
        let once = warmup_start.elapsed();

        let budget = self.measurement_time;
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            black_box(f());
            iters += 1;
            // Very slow bodies: one measured iteration is enough.
            if once > budget && iters > 0 {
                break;
            }
        }
        let elapsed = start.elapsed();
        self.result = Some((iters.max(1), elapsed));
    }

    fn report(&self, id: &str) {
        match self.result {
            Some((iters, total)) => {
                let per = total.as_secs_f64() / iters as f64;
                println!(
                    "bench: {id:<50} {:>12.3} µs/iter ({iters} iters)",
                    per * 1e6
                );
            }
            None => println!("bench: {id:<50} (no measurement)"),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, measurement_time: Duration, f: &mut F) {
    let mut bencher = Bencher::new(measurement_time);
    f(&mut bencher);
    bencher.report(id);
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
