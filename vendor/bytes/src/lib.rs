//! Offline, API-compatible subset of [bytes](https://docs.rs/bytes).
//!
//! `Bytes` is a cheaply cloneable shared byte buffer (`Arc<[u8]>` under
//! the hood), `BytesMut` is a growable byte buffer (a `Vec<u8>` with a
//! read cursor), and `Buf`/`BufMut` cover the accessor methods the
//! workspace's framing code uses. Semantics match upstream for the
//! covered surface.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// Cloning a `Bytes` bumps a refcount instead of copying the buffer, so
/// fanning one payload out to many receivers is O(1) per receiver. This
/// is what makes the simulator's `Message` clones on the deliver/forward
/// hot path allocation-free.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer (no allocation is shared until filled).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({}B)", self.data.len())
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer with a read cursor.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor: bytes before this offset have been consumed.
    head: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserves space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Copies the unread bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.head..].to_vec()
    }

    /// Splits off and returns the first `at` unread bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let out = BytesMut {
            data: self.data[self.head..self.head + at].to_vec(),
            head: 0,
        };
        self.head += at;
        self.compact();
        out
    }

    /// Drops consumed bytes once they dominate the allocation.
    fn compact(&mut self) {
        if self.head > 4096 && self.head * 2 > self.data.len() {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let head = self.head;
        &mut self.data[head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.head += cnt;
        self.compact();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_shares_not_copies() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_slice(), b.as_slice()), "clone shares");
        assert_eq!(a.len(), 3);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
        assert_eq!(format!("{a:?}"), "Bytes(3B)");
    }

    #[test]
    fn bytes_slice_comparisons() {
        let a = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, *b"abc".as_slice());
        assert_eq!(&a[1..], b"bc");
        assert!(a < Bytes::copy_from_slice(b"abd"));
    }

    #[test]
    fn bytesmut_put_get_roundtrip() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u32_le(0xdead_beef);
        assert_eq!(b.len(), 4);
        assert_eq!((&b[..]).get_u32_le(), 0xdead_beef);
        assert_eq!(b.to_vec(), 0xdead_beef_u32.to_le_bytes());
    }

    #[test]
    fn slice_buf_advances() {
        let raw = [1u8, 0, 0, 0, 9];
        let mut s = &raw[..];
        assert_eq!(s.get_u32_le(), 1);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.get_u8(), 9);
    }

    #[test]
    fn split_to_takes_prefix() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        let hello = b.split_to(5);
        assert_eq!(&hello[..], b"hello");
        assert_eq!(&b[..], b" world");
    }
}
