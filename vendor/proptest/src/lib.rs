//! Offline, API-compatible subset of [proptest](https://docs.rs/proptest).
//!
//! Provides random-testing without shrinking: the `proptest!` macro runs
//! each property for `ProptestConfig::cases` deterministic pseudo-random
//! cases (seeded from the test name, so failures are reproducible by
//! rerunning the same test). Supported strategies cover what the
//! workspace uses: numeric ranges, `any::<T>()`, string patterns,
//! `Just`, `prop_map`, `prop_perturb`, and `collection::{vec,
//! btree_set}`.
//!
//! Unlike upstream, a failing case panics immediately with the generated
//! inputs un-shrunk; the deterministic seed makes the failure replayable.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG.
// ---------------------------------------------------------------------------

/// The deterministic RNG handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds an RNG whose stream is a pure function of `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Builds an RNG seeded from a test name, for reproducible cases.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Returns the next random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns the next random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Strategy core.
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, handing it a private RNG.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_perturb`].
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        let v = self.inner.generate(rng);
        let fork = TestRng::from_seed(rng.next_u64());
        (self.f)(v, fork)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Numeric range strategies.
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// `any::<T>()`.
// ---------------------------------------------------------------------------

/// Types with a full-domain default strategy.
pub trait Arbitrary: Sized {
    /// Samples a value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix finite magnitudes across the exponent range; avoid NaN/inf
        // (tests exclude them explicitly when they matter).
        let mantissa = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.below(605) as i32) - 302;
        mantissa * 10f64.powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        let mantissa = (rng.next_f64() * 2.0 - 1.0) as f32;
        let exp = (rng.below(70) as i32) - 35;
        mantissa * 10f32.powi(exp)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias toward ASCII, with occasional wide scalars.
        if rng.below(4) == 0 {
            char::from_u32(rng.next_u32() % 0x11_0000).unwrap_or('\u{fffd}')
        } else {
            (b' ' + (rng.below(95) as u8)) as char
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// String pattern strategies.
// ---------------------------------------------------------------------------

/// String patterns act as strategies. Only the universal patterns (`".*"`
/// and friends) are honoured: the stub generates arbitrary short strings
/// and ignores the pattern's structure.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(24) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// Collection strategies.
// ---------------------------------------------------------------------------

/// A target size range for generated collections.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates sets whose cardinality falls in `size` (best effort: if
    /// the element domain is too small the set may come out smaller).
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(20) + 20 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Config and macros.
// ---------------------------------------------------------------------------

/// Controls how many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Declares property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, SizeRange, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}
